package durable

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"sdnbugs/internal/diskfault"
)

func TestJournalRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{Key: "a", Value: []byte("hello")},
		{Key: "issue/ONOS-1", Value: []byte(`{"id":"ONOS-1"}`)},
		{Key: "empty", Value: nil},
		{Key: "binary", Value: []byte{0, 1, 2, 0xff}},
	}
	data := append([]byte(nil), journalMagic...)
	for _, r := range recs {
		data = appendRecord(data, r)
	}
	got, valid, err := ReplayJournal(data)
	if err != nil {
		t.Fatal(err)
	}
	if valid != len(data) {
		t.Fatalf("valid = %d, want %d", valid, len(data))
	}
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i, r := range got {
		if r.Key != recs[i].Key || !bytes.Equal(r.Value, recs[i].Value) {
			t.Errorf("record %d = %+v, want %+v", i, r, recs[i])
		}
	}
}

func TestJournalTornTailTruncated(t *testing.T) {
	data := append([]byte(nil), journalMagic...)
	data = appendRecord(data, Record{Key: "k1", Value: []byte("v1")})
	whole := len(data)
	data = appendRecord(data, Record{Key: "k2", Value: []byte("v2-longer-value")})

	// Every possible tear of the final record must yield exactly the
	// first record back, with the tear reported for truncation.
	for cut := whole; cut < len(data); cut++ {
		recs, valid, err := ReplayJournal(data[:cut])
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if valid != whole {
			t.Fatalf("cut %d: valid = %d, want %d", cut, valid, whole)
		}
		if len(recs) != 1 || recs[0].Key != "k1" {
			t.Fatalf("cut %d: records = %+v, want just k1", cut, recs)
		}
	}
}

func TestJournalBitFlipRejected(t *testing.T) {
	data := append([]byte(nil), journalMagic...)
	data = appendRecord(data, Record{Key: "k1", Value: []byte("value-one")})
	one := len(data)
	data = appendRecord(data, Record{Key: "k2", Value: []byte("value-two")})

	// Flip one bit inside the second record's payload: replay must stop
	// at the first record, never serving the damaged one.
	corrupt := append([]byte(nil), data...)
	corrupt[one+recHeaderLen+3] ^= 0x10
	recs, valid, err := ReplayJournal(corrupt)
	if err != nil {
		t.Fatal(err)
	}
	if valid != one || len(recs) != 1 {
		t.Fatalf("valid=%d records=%d, want stop at first record (%d)", valid, len(recs), one)
	}
}

func TestJournalForeignHeaderCorrupt(t *testing.T) {
	if _, _, err := ReplayJournal([]byte("NOTAWAL!plus-some-data")); !errors.Is(err, ErrCorrupt) {
		t.Errorf("foreign header: err = %v, want ErrCorrupt", err)
	}
	// A prefix of the real magic is a torn header, not corruption.
	if _, valid, err := ReplayJournal(journalMagic[:5]); err != nil || valid != 0 {
		t.Errorf("torn header: valid=%d err=%v, want 0,nil", valid, err)
	}
}

func TestSnapshotRoundTripAndCorruption(t *testing.T) {
	recs := []Record{{Key: "a", Value: []byte("1")}, {Key: "b", Value: []byte("2")}}
	data := encodeSnapshot(7, recs)
	gen, got, err := decodeSnapshot(data)
	if err != nil || gen != 7 || len(got) != 2 {
		t.Fatalf("decode = gen %d, %d records, %v", gen, len(got), err)
	}
	for i := range data {
		corrupt := append([]byte(nil), data...)
		corrupt[i] ^= 0x01
		if _, _, err := decodeSnapshot(corrupt); err == nil {
			t.Fatalf("bit flip at %d accepted", i)
		}
	}
	if _, _, err := decodeSnapshot(data[:len(data)-3]); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated snapshot: err = %v, want ErrCorrupt", err)
	}
}

// storeFixtures runs a subtest against MemFS and the real filesystem.
func storeFixtures(t *testing.T) map[string]func(t *testing.T) (diskfault.FS, string) {
	return map[string]func(t *testing.T) (diskfault.FS, string){
		"mem": func(t *testing.T) (diskfault.FS, string) { return diskfault.NewMemFS(), "state" },
		"os":  func(t *testing.T) (diskfault.FS, string) { return diskfault.OS(), filepath.Join(t.TempDir(), "state") },
	}
}

func TestStorePersistsAcrossReopen(t *testing.T) {
	for name, mk := range storeFixtures(t) {
		t.Run(name, func(t *testing.T) {
			fsys, dir := mk(t)
			st, err := Open(dir, Options{FS: fsys, SnapshotEvery: 4})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 10; i++ {
				if err := st.Put(fmt.Sprintf("k%02d", i), []byte(fmt.Sprintf("v%02d", i))); err != nil {
					t.Fatal(err)
				}
			}
			// Overwrite keeps the original slot and the new value.
			if err := st.Put("k03", []byte("updated")); err != nil {
				t.Fatal(err)
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}

			st2, err := Open(dir, Options{FS: fsys})
			if err != nil {
				t.Fatal(err)
			}
			defer func() { _ = st2.Close() }()
			if st2.Len() != 10 {
				t.Fatalf("recovered %d keys, want 10", st2.Len())
			}
			var order []string
			st2.Range(func(k string, v []byte) bool {
				order = append(order, k)
				return true
			})
			for i, k := range order {
				if want := fmt.Sprintf("k%02d", i); k != want {
					t.Errorf("order[%d] = %s, want %s", i, k, want)
				}
			}
			if v, ok := st2.Get("k03"); !ok || string(v) != "updated" {
				t.Errorf("k03 = %q, %v; want updated", v, ok)
			}
			rec := st2.Recovery()
			if rec.SnapshotGen == 0 {
				t.Errorf("recovery used no snapshot: %+v (SnapshotEvery was 4)", rec)
			}
		})
	}
}

func TestStoreLockFailsFast(t *testing.T) {
	for name, mk := range storeFixtures(t) {
		t.Run(name, func(t *testing.T) {
			fsys, dir := mk(t)
			st, err := Open(dir, Options{FS: fsys})
			if err != nil {
				t.Fatal(err)
			}
			// A second opener must detect the lock and fail with the
			// sentinel, touching nothing.
			if _, err := Open(dir, Options{FS: fsys}); !errors.Is(err, ErrLocked) {
				t.Fatalf("second open: err = %v, want ErrLocked", err)
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			// Close released the lock: reopening works.
			st2, err := Open(dir, Options{FS: fsys})
			if err != nil {
				t.Fatalf("open after close: %v", err)
			}
			_ = st2.Close()
		})
	}
}

func TestStoreTakeOverBreaksStaleLock(t *testing.T) {
	mem := diskfault.NewMemFS()
	st, err := Open("state", Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash: the store never closes, the lock stays behind.
	_, err = Open("state", Options{FS: mem})
	if !errors.Is(err, ErrLocked) {
		t.Fatalf("err = %v, want ErrLocked", err)
	}
	st2, err := Open("state", Options{FS: mem, TakeOver: true})
	if err != nil {
		t.Fatalf("take-over open: %v", err)
	}
	defer func() { _ = st2.Close() }()
	if v, ok := st2.Get("k"); !ok || string(v) != "v" {
		t.Errorf("state lost across take-over: %q, %v", v, ok)
	}
}

func TestStoreCloseReleasesAllHandles(t *testing.T) {
	mem := diskfault.NewMemFS()
	st, err := Open("state", Options{FS: mem, SnapshotEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ { // crosses several snapshot boundaries
		if err := st.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if n := mem.OpenHandles(); n != 0 {
		t.Fatalf("open handles after Close = %d, want 0", n)
	}
	// Operations after Close fail with the sentinel.
	if err := st.Put("x", nil); !errors.Is(err, ErrClosed) {
		t.Errorf("put after close: err = %v, want ErrClosed", err)
	}
	if err := st.Close(); err != nil {
		t.Errorf("second close: %v, want idempotent nil", err)
	}
}

func TestStoreTornJournalTailRecovered(t *testing.T) {
	mem := diskfault.NewMemFS()
	st, err := Open("state", Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := st.Put(fmt.Sprintf("k%d", i), []byte("value")); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the journal tail by hand: chop the last 3 bytes.
	wal := "state/" + walName(0)
	data := mem.Snapshot()[walName(0)]
	if data == nil {
		// MemFS.Snapshot keys are full cleaned paths.
		data = mem.Snapshot()[wal]
	}
	if data == nil {
		t.Fatalf("journal %s not found on disk: %v", wal, mem.Snapshot())
	}
	f, err := mem.OpenFile(wal, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(int64(len(data) - 3)); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()

	st2, err := Open("state", Options{FS: mem})
	if err != nil {
		t.Fatalf("recovery over torn tail: %v", err)
	}
	defer func() { _ = st2.Close() }()
	if st2.Len() != 4 {
		t.Errorf("recovered %d records, want 4 (last one torn)", st2.Len())
	}
	if tb := st2.Recovery().TruncatedBytes; tb == 0 {
		t.Error("recovery did not report the truncated tail")
	}
	// The store keeps working after the repair.
	if err := st2.Put("k4", []byte("value")); err != nil {
		t.Fatal(err)
	}
}

func TestStoreCorruptSnapshotIsFatal(t *testing.T) {
	mem := diskfault.NewMemFS()
	st, err := Open("state", Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	snap := "state/" + snapName(1)
	f, err := mem.OpenFile(snap, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad}); err != nil { // stomp the magic
		t.Fatal(err)
	}
	_ = f.Close()
	if _, err := Open("state", Options{FS: mem}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open over corrupt snapshot: err = %v, want ErrCorrupt (never silent)", err)
	}
}

func TestStoreTransientWriteFaultIsRetryable(t *testing.T) {
	mem := diskfault.NewMemFS()
	ffs := diskfault.New(mem, diskfault.Config{Seed: 5, ShortWriteRate: 0.35})
	var st *Store
	var err error
	for i := 0; ; i++ { // Open itself writes (lock, header) and may draw a fault
		st, err = Open("state", Options{FS: ffs, TakeOver: true})
		if err == nil {
			break
		}
		if !errors.Is(err, diskfault.ErrInjected) {
			t.Fatal(err)
		}
		if i > 20 {
			t.Fatal("open never succeeded under transient faults")
		}
	}
	wrote, injected := 0, 0
	for i := 0; wrote < 30; i++ {
		key := fmt.Sprintf("k%03d", wrote)
		err := st.Put(key, []byte("steady-value-payload"))
		switch {
		case err == nil:
			wrote++
		case errors.Is(err, diskfault.ErrInjected):
			injected++ // transient: same Put retries
		default:
			t.Fatalf("put %s: %v", key, err)
		}
		if i > 500 {
			t.Fatal("no progress under transient faults")
		}
	}
	if injected == 0 {
		t.Fatal("fault injector never fired; rate too low for the test to mean anything")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Despite every injected short write, recovery sees exactly the 30
	// acknowledged records — the rollback kept the journal clean.
	st2, err := Open("state", Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = st2.Close() }()
	if st2.Len() != 30 {
		t.Errorf("recovered %d records, want 30 (injected=%d)", st2.Len(), injected)
	}
	if tb := st2.Recovery().TruncatedBytes; tb != 0 {
		t.Errorf("clean-close journal had %d torn bytes; rollback failed to repair", tb)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFileAtomic(path, []byte("first"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("second"), 0o600); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "second" {
		t.Errorf("content = %q, want second", data)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if perm := info.Mode().Perm(); perm != 0o600 {
		t.Errorf("perm = %o, want 600", perm)
	}
	// No temp debris left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory holds %d entries, want just the target: %v", len(entries), entries)
	}
}
