package durable

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sdnbugs/internal/diskfault"
)

// TestGroupCommitDurabilityContract: a group-committed store must
// reopen with every acknowledged record, in Put order, and its journal
// must replay under the same rules as a single-put journal.
func TestGroupCommitRecoversEverything(t *testing.T) {
	mem := diskfault.NewMemFS()
	s, err := Open("gc", Options{FS: mem, GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	const writers, per = 16, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				key := fmt.Sprintf("w%02d/%03d", w, i)
				if err := s.Put(key, []byte("v-"+key)); err != nil {
					t.Errorf("put %s: %v", key, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := s.Len(); got != writers*per {
		t.Fatalf("live len = %d, want %d", got, writers*per)
	}
	stats := s.CommitStats()
	if stats.Records != writers*per {
		t.Fatalf("stats records = %d, want %d", stats.Records, writers*per)
	}
	if stats.Syncs > stats.Records {
		t.Fatalf("syncs %d > records %d: group commit never batched", stats.Syncs, stats.Records)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open("gc", Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = r.Close() }()
	if got := r.Len(); got != writers*per {
		t.Fatalf("recovered len = %d, want %d", got, writers*per)
	}
	r.Range(func(k string, v []byte) bool {
		if string(v) != "v-"+k {
			t.Errorf("key %s recovered wrong value %q", k, v)
			return false
		}
		return true
	})
}

func TestGroupCommitBatchesConcurrentWriters(t *testing.T) {
	// With a commit window and many concurrent writers, flushes must
	// coalesce: strictly fewer fsyncs than records.
	mem := diskfault.NewMemFS()
	s, err := Open("gc", Options{FS: mem, GroupCommit: true, GroupWindow: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()
	const writers = 32
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_ = s.Put(fmt.Sprintf("k%02d", w), []byte("v"))
		}(w)
	}
	wg.Wait()
	stats := s.CommitStats()
	if stats.Records != writers {
		t.Fatalf("records = %d, want %d", stats.Records, writers)
	}
	if stats.Syncs >= writers {
		t.Errorf("syncs = %d for %d concurrent records: no batching happened", stats.Syncs, writers)
	}
	if stats.LargestBatch < 2 {
		t.Errorf("largest batch = %d, want >= 2", stats.LargestBatch)
	}
}

func TestGroupCommitFailedSyncRollsBackWholeBatch(t *testing.T) {
	// Arm a sync failure; every waiter in the affected batch must get an
	// error and the journal must stay clean for the next batch.
	mem := diskfault.NewMemFS()
	ffs := diskfault.New(mem, diskfault.Config{Seed: 1, SyncFailRate: 0.5})
	s, err := Open("gc", Options{FS: ffs, GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	acked := 0
	for i := 0; i < 20; i++ {
		if err := s.Put(fmt.Sprintf("k%02d", i), []byte("v")); err == nil {
			acked++
		}
	}
	_ = s.Close()
	r, err := Open("gc", Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = r.Close() }()
	// Every acknowledged put must be present; unacknowledged ones must
	// not be (sync failures roll the journal back).
	if got := r.Len(); got != acked {
		t.Fatalf("recovered %d records, acked %d", got, acked)
	}
}

func TestGroupCommitPutAfterCloseFails(t *testing.T) {
	mem := diskfault.NewMemFS()
	s, err := Open("gc", Options{FS: mem, GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", []byte("2")); !errors.Is(err, ErrClosed) {
		t.Fatalf("put after close: %v, want ErrClosed", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestGroupCommitSnapshotRotation(t *testing.T) {
	mem := diskfault.NewMemFS()
	s, err := Open("gc", Options{FS: mem, GroupCommit: true, SnapshotEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 35; i++ {
		if err := s.Put(fmt.Sprintf("k%02d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if gen := s.Gen(); gen == 0 {
		t.Fatal("no snapshot published despite SnapshotEvery=10")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open("gc", Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = r.Close() }()
	if got := r.Len(); got != 35 {
		t.Fatalf("recovered %d, want 35", got)
	}
	if rec := r.Recovery(); rec.SnapshotGen == 0 {
		t.Error("recovery did not come from a snapshot")
	}
}

// TestLockHandoffUnderConcurrentOpeners is the ErrLocked/TakeOver
// coverage: many simultaneous openers of one state directory must
// produce exactly one owner, the rest failing fast with ErrLocked;
// after the owner "crashes" (never closes), a plain reopen still sees
// ErrLocked and only TakeOver recovers the data. Group commit keeps a
// background committer alive per store, which makes this race easier
// to hit — so the whole test runs in group-commit mode.
func TestLockHandoffUnderConcurrentOpeners(t *testing.T) {
	mem := diskfault.NewMemFS()
	const openers = 12
	var won atomic.Int32
	var lockedCount atomic.Int32
	stores := make([]*Store, openers)
	var wg sync.WaitGroup
	for i := 0; i < openers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := Open("shared", Options{FS: mem, GroupCommit: true})
			switch {
			case err == nil:
				stores[i] = s
				won.Add(1)
			case errors.Is(err, ErrLocked):
				lockedCount.Add(1)
			default:
				t.Errorf("opener %d: unexpected error %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if won.Load() != 1 || lockedCount.Load() != openers-1 {
		t.Fatalf("winners = %d, ErrLocked = %d; want exactly 1 / %d",
			won.Load(), lockedCount.Load(), openers-1)
	}
	var owner *Store
	for _, s := range stores {
		if s != nil {
			owner = s
		}
	}
	if err := owner.Put("owned", []byte("yes")); err != nil {
		t.Fatal(err)
	}

	// The owner crashes without releasing the lock: a plain reopen must
	// still be refused, TakeOver must win and see the data.
	if _, err := Open("shared", Options{FS: mem}); !errors.Is(err, ErrLocked) {
		t.Fatalf("reopen while owner live = %v, want ErrLocked", err)
	}
	// Simulate the crash: drop the owner without Close (its committer
	// goroutine is stopped so the test doesn't leak, but the LOCK file
	// stays — exactly the state a killed process leaves behind).
	owner.stopGroupCommit()
	heir, err := Open("shared", Options{FS: mem, GroupCommit: true, TakeOver: true})
	if err != nil {
		t.Fatalf("TakeOver after crash: %v", err)
	}
	defer func() { _ = heir.Close() }()
	if v, ok := heir.Get("owned"); !ok || string(v) != "yes" {
		t.Fatalf("heir lost the crashed owner's data: %q %v", v, ok)
	}
	if err := heir.Put("heir", []byte("writes")); err != nil {
		t.Fatalf("heir cannot write: %v", err)
	}
}

// BenchmarkAppendThroughput measures acknowledged appends per second
// with concurrent writers, per-append fsync vs group commit — the
// number BENCH_tracker.json's group_commit section is derived from.
func BenchmarkAppendThroughput(b *testing.B) {
	for _, mode := range []struct {
		name  string
		group bool
	}{{"per-append-fsync", false}, {"group-commit", true}} {
		b.Run(mode.name, func(b *testing.B) {
			dir := filepath.Join(b.TempDir(), "bench-state")
			s, err := Open(dir, Options{GroupCommit: mode.group})
			if err != nil {
				b.Fatal(err)
			}
			defer func() { _ = s.Close() }()
			var seq atomic.Uint64
			val := []byte(`{"id":"BENCH","severity":"major","status":"closed"}`)
			b.SetParallelism(64)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					k := fmt.Sprintf("k/%016d", seq.Add(1))
					if err := s.Put(k, val); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			elapsed := b.Elapsed().Seconds()
			if elapsed > 0 {
				b.ReportMetric(float64(b.N)/elapsed, "appends/s")
			}
		})
	}
}
