package durable

import (
	"errors"
	"fmt"
	"testing"

	"sdnbugs/internal/diskfault"
)

// matrixWorkload drives nPuts sequential Puts against st, stopping at
// the first crash. It returns how many Puts were acknowledged (err ==
// nil) and whether the filesystem crashed mid-run.
func matrixWorkload(t *testing.T, st *Store, nPuts int) (completed int, crashed bool) {
	t.Helper()
	for i := 0; i < nPuts; i++ {
		err := st.Put(matrixKey(i), matrixVal(i))
		if err == nil {
			completed++
			continue
		}
		if errors.Is(err, diskfault.ErrCrashed) {
			return completed, true
		}
		t.Fatalf("put %d failed with a non-crash error: %v", i, err)
	}
	return completed, false
}

func matrixKey(i int) string { return fmt.Sprintf("rec/%04d", i) }
func matrixVal(i int) []byte { return []byte(fmt.Sprintf("payload-%04d-%s", i, "abcdefghij")) }

// TestCrashPointMatrix is the exhaustive crash-point property test: for
// several seeds it first measures how many write-class filesystem
// operations a clean 20-Put run performs, then re-runs the identical
// workload once per possible crash point k — the filesystem "dies" on
// its k-th write-class op, tearing any in-flight write at a seed-chosen
// byte — and recovers from the surviving bytes. Every single crash
// point must yield a prefix-consistent store:
//
//   - every acknowledged Put is present (fsync-before-ack),
//   - at most one unacknowledged Put is present (a crash after the
//     journal append committed but before Put returned, e.g. inside an
//     auto-snapshot),
//   - records appear exactly in Put order with their exact values — no
//     duplicates, no gaps, no invented data,
//
// and the recovered store must accept the remaining workload and end up
// byte-identical to the clean run.
func TestCrashPointMatrix(t *testing.T) {
	const nPuts = 20
	const snapEvery = 5 // several snapshot cycles inside the workload

	cleanRun := func() (map[string][]byte, int) {
		mem := diskfault.NewMemFS()
		ffs := diskfault.New(mem, diskfault.Config{})
		st, err := Open("state", Options{FS: ffs, SnapshotEvery: snapEvery})
		if err != nil {
			t.Fatal(err)
		}
		if done, crashed := matrixWorkload(t, st, nPuts); done != nPuts || crashed {
			t.Fatalf("clean run completed %d/%d (crashed=%v)", done, nPuts, crashed)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		final := map[string][]byte{}
		st2, err := Open("state", Options{FS: mem})
		if err != nil {
			t.Fatal(err)
		}
		st2.Range(func(k string, v []byte) bool { final[k] = v; return true })
		_ = st2.Close()
		return final, ffs.Stats().Ops
	}
	want, totalOps := cleanRun()
	if totalOps < nPuts*2 { // each Put is at least append+fsync
		t.Fatalf("clean run took %d write-class ops, expected at least %d", totalOps, nPuts*2)
	}

	for _, seed := range []int64{1, 7, 42} {
		for k := 1; k <= totalOps; k++ {
			t.Run(fmt.Sprintf("seed%d/crash%03d", seed, k), func(t *testing.T) {
				mem := diskfault.NewMemFS()
				ffs := diskfault.New(mem, diskfault.Config{Seed: seed, CrashAfterOps: k})
				st, err := Open("state", Options{FS: ffs, SnapshotEvery: snapEvery})
				if err != nil {
					if errors.Is(err, diskfault.ErrCrashed) {
						// Crashed before the store was even up (lock write,
						// journal header): recovery from nothing must work.
						requireRecoverable(t, mem, 0, nPuts, want)
						return
					}
					t.Fatal(err)
				}
				completed, crashed := matrixWorkload(t, st, nPuts)
				if !crashed && completed != nPuts {
					t.Fatalf("crash point %d never fired mid-workload yet only %d/%d puts landed", k, completed, nPuts)
				}
				// Close releases handles even on a crashed FS; when the
				// crash point lands inside Close itself (final sync, lock
				// removal) that too must be recoverable.
				_ = st.Close()
				if !crashed && !ffs.Crashed() {
					t.Fatalf("crash point %d never fired (clean run had %d ops)", k, totalOps)
				}
				requireRecoverable(t, mem, completed, nPuts, want)
			})
		}
	}
}

// requireRecoverable reboots on the surviving disk image, checks the
// prefix-consistency property against completed acknowledged Puts, then
// finishes the workload and demands the clean run's exact final state.
func requireRecoverable(t *testing.T, mem *diskfault.MemFS, completed, nPuts int, want map[string][]byte) {
	t.Helper()
	st, err := Open("state", Options{FS: mem, TakeOver: true})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer func() { _ = st.Close() }()

	got := st.Len()
	if got < completed || got > completed+1 {
		t.Fatalf("recovered %d records with %d acknowledged: outside [ack, ack+1]", got, completed)
	}
	idx := 0
	st.Range(func(k string, v []byte) bool {
		if k != matrixKey(idx) {
			t.Fatalf("record %d recovered as %q, want %q (order/duplicate violation)", idx, k, matrixKey(idx))
		}
		if string(v) != string(matrixVal(idx)) {
			t.Fatalf("record %q value corrupted: %q", k, v)
		}
		idx++
		return true
	})
	if idx != got {
		t.Fatalf("Range yielded %d records, Len says %d", idx, got)
	}

	// Re-drive the rest of the workload (re-Putting the unacknowledged
	// record is idempotent) and require the clean run's final state.
	for i := got; i < nPuts; i++ {
		if err := st.Put(matrixKey(i), matrixVal(i)); err != nil {
			t.Fatalf("put %d after recovery: %v", i, err)
		}
	}
	if st.Len() != len(want) {
		t.Fatalf("final store has %d records, clean run had %d", st.Len(), len(want))
	}
	st.Range(func(k string, v []byte) bool {
		if string(want[k]) != string(v) {
			t.Fatalf("final state diverged from clean run at %q", k)
		}
		return true
	})
}
