package durable

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Group commit batches many concurrent Puts into one journal append
// and one fsync. The durability contract is unchanged — a Put returns
// only after the fsync covering its record has succeeded, and a failed
// batch is rolled back to the pre-batch journal length so no waiter is
// ever acknowledged ahead of the disk — but the fsync cost is
// amortized across every writer that arrived while the previous flush
// was in flight. Records are encoded with the exact same appendRecord
// framing as single-put mode, so recovery, torn-tail truncation, and
// the FuzzJournalReplay invariant apply byte-for-byte to a batched
// journal.
//
// The committer is a single goroutine woken whenever work is queued.
// Each cycle it optionally waits one commit window (Options.GroupWindow)
// to let stragglers join, then drains the whole queue, writes the
// concatenated records, syncs once, applies them in memory in queue
// order, and releases the waiters.

// commitWaiter is one queued Put awaiting a group flush.
type commitWaiter struct {
	rec  Record
	buf  []byte // appendRecord framing, encoded outside any lock
	done chan error
}

// groupCommitter is the group-commit state hung off a Store.
type groupCommitter struct {
	window time.Duration

	mu     sync.Mutex
	queue  []*commitWaiter
	closed bool

	wake chan struct{}
	stop chan struct{}
	done chan struct{}

	// CommitStats counters.
	batches      atomic.Uint64
	records      atomic.Uint64
	syncs        atomic.Uint64
	largestBatch atomic.Uint64
}

// CommitStats reports how effectively group commit is amortizing
// fsyncs. In single-put mode Batches == Records.
type CommitStats struct {
	// Batches counts flush cycles (one fsync each in group mode).
	Batches uint64
	// Records counts acknowledged journal records.
	Records uint64
	// Syncs counts journal fsyncs issued for record appends.
	Syncs uint64
	// LargestBatch is the biggest single flush.
	LargestBatch uint64
}

// CommitStats returns append/fsync counters for this store.
func (s *Store) CommitStats() CommitStats {
	if s.gc == nil {
		s.mu.Lock()
		defer s.mu.Unlock()
		n := s.singleAppends
		return CommitStats{Batches: n, Records: n, Syncs: n, LargestBatch: min(n, 1)}
	}
	st := CommitStats{
		Batches:      s.gc.batches.Load(),
		Records:      s.gc.records.Load(),
		Syncs:        s.gc.syncs.Load(),
		LargestBatch: s.gc.largestBatch.Load(),
	}
	return st
}

// startGroupCommit arms the committer goroutine; called from Open when
// Options.GroupCommit is set.
func (s *Store) startGroupCommit() {
	s.gc = &groupCommitter{
		window: s.opts.GroupWindow,
		wake:   make(chan struct{}, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go s.commitLoop()
}

// putGrouped enqueues one record and blocks until its batch is on disk.
func (s *Store) putGrouped(rec Record) error {
	w := &commitWaiter{rec: rec, buf: appendRecord(nil, rec), done: make(chan error, 1)}
	s.gc.mu.Lock()
	if s.gc.closed {
		s.gc.mu.Unlock()
		return ErrClosed
	}
	s.gc.queue = append(s.gc.queue, w)
	s.gc.mu.Unlock()
	select {
	case s.gc.wake <- struct{}{}:
	default: // a wakeup is already pending; the committer will see us
	}
	return <-w.done
}

// commitLoop is the committer goroutine: wait for work (or shutdown),
// optionally linger one commit window, then flush everything queued.
func (s *Store) commitLoop() {
	defer close(s.gc.done)
	for {
		select {
		case <-s.gc.stop:
			s.flushBatch() // drain anything enqueued before close
			return
		case <-s.gc.wake:
		}
		if s.gc.window > 0 {
			timer := time.NewTimer(s.gc.window)
			select {
			case <-s.gc.stop:
				timer.Stop()
				s.flushBatch()
				return
			case <-timer.C:
			}
		}
		s.flushBatch()
	}
}

// flushBatch commits every queued waiter in one append+fsync.
func (s *Store) flushBatch() {
	s.gc.mu.Lock()
	batch := s.gc.queue
	s.gc.queue = nil
	s.gc.mu.Unlock()
	if len(batch) == 0 {
		return
	}

	s.mu.Lock()
	if err := s.usableLocked(); err != nil {
		s.mu.Unlock()
		for _, w := range batch {
			w.done <- err
		}
		return
	}
	var buf []byte
	for _, w := range batch {
		buf = append(buf, w.buf...)
	}
	var commitErr error
	if _, err := s.journal.Write(buf); err != nil {
		commitErr = s.rollbackLocked(fmt.Errorf("durable: journal append: %w", err))
	} else if err := s.journal.Sync(); err != nil {
		commitErr = s.rollbackLocked(fmt.Errorf("durable: journal sync: %w", err))
	}
	if commitErr == nil {
		s.gc.syncs.Add(1)
		s.gc.batches.Add(1)
		s.gc.records.Add(uint64(len(batch)))
		if n := uint64(len(batch)); n > s.gc.largestBatch.Load() {
			s.gc.largestBatch.Store(n)
		}
		s.journalSize += int64(len(buf))
		for _, w := range batch {
			s.applyLocked(w.rec)
		}
		s.putsSinceSnap += len(batch)
		if s.opts.SnapshotEvery > 0 && s.putsSinceSnap >= s.opts.SnapshotEvery {
			// As in single-put mode, the batch itself is committed; a
			// snapshot failure is surfaced (to every member of the batch
			// that triggered it) while the journal stays intact.
			commitErr = s.snapshotLocked()
		}
	}
	s.mu.Unlock()
	for _, w := range batch {
		w.done <- commitErr
	}
}

// stopGroupCommit flushes the queue and retires the committer; no-op
// when group commit is off or already stopped. It must be called
// without holding s.mu (the committer locks it to flush).
func (s *Store) stopGroupCommit() {
	if s.gc == nil {
		return
	}
	s.gc.mu.Lock()
	if s.gc.closed {
		s.gc.mu.Unlock()
		return
	}
	s.gc.closed = true
	s.gc.mu.Unlock()
	close(s.gc.stop)
	<-s.gc.done
}
