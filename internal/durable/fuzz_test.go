package durable

import (
	"bytes"
	"testing"
)

// FuzzJournalReplay fuzzes the recovery parser with arbitrary journal
// images. The safety contract under fuzzing:
//
//   - never panic, whatever the bytes;
//   - never accept a corrupt record: re-encoding the returned records
//     after the magic must reproduce data[:valid] byte for byte, so
//     every accepted byte is accounted for by a checksum-verified
//     record (nothing invented, nothing reordered, nothing partial);
//   - valid never exceeds len(data), and ErrCorrupt carries no records.
func FuzzJournalReplay(f *testing.F) {
	// Seed corpus: a healthy multi-record journal, every truncation
	// class, bit flips in header/CRC/payload, and outright garbage.
	healthy := append([]byte(nil), journalMagic...)
	healthy = appendRecord(healthy, Record{Key: "issue/ONOS-1", Value: []byte(`{"id":"ONOS-1","sev":"major"}`)})
	oneRec := len(healthy)
	healthy = appendRecord(healthy, Record{Key: "cursor/jira", Value: []byte(`{"next":3}`)})
	healthy = appendRecord(healthy, Record{Key: "issue/FAUCET-9", Value: nil})

	f.Add([]byte{})
	f.Add(append([]byte(nil), journalMagic...)) // empty journal
	f.Add(append([]byte(nil), healthy...))
	f.Add(append([]byte(nil), healthy[:3]...))        // torn magic
	f.Add(append([]byte(nil), healthy[:oneRec+5]...)) // torn mid-header
	f.Add(append([]byte(nil), healthy[:len(healthy)-4]...))
	flip := func(i int, bit byte) []byte {
		c := append([]byte(nil), healthy...)
		c[i] ^= bit
		return c
	}
	f.Add(flip(0, 0x01))          // damaged magic
	f.Add(flip(magicLen+1, 0x80)) // damaged length field
	f.Add(flip(magicLen+5, 0x04)) // damaged CRC
	f.Add(flip(oneRec-2, 0x01))   // damaged payload byte
	f.Add([]byte("SDNSNP1\n-a-snapshot-is-not-a-journal"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid, err := ReplayJournal(data)
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid = %d outside [0, %d]", valid, len(data))
		}
		if err != nil {
			if len(recs) != 0 || valid != 0 {
				t.Fatalf("ErrCorrupt must carry no data: %d records, valid=%d", len(recs), valid)
			}
			return
		}
		reencoded := make([]byte, 0, valid)
		if valid > 0 {
			reencoded = append(reencoded, journalMagic...)
		}
		for _, r := range recs {
			reencoded = appendRecord(reencoded, r)
		}
		if !bytes.Equal(reencoded, data[:valid]) {
			t.Fatalf("re-encoding %d records gives %d bytes != accepted prefix of %d bytes: parser accepted something it cannot reproduce",
				len(recs), len(reencoded), valid)
		}
	})
}
