package durable

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
)

// On-disk formats.
//
// Journal (write-ahead log):
//
//	magic "SDNWAL1\n" (8 bytes)
//	record*
//
// Record:
//
//	uint32 LE payload length
//	uint32 LE CRC-32C (Castagnoli) of the payload
//	payload: op (1 byte, 0x01 = put) | uint32 LE key length | key | value
//
// Snapshot:
//
//	magic "SDNSNP1\n" (8 bytes)
//	uint64 LE generation
//	uint64 LE record count
//	record*  (same record encoding, one per live key in insertion order)
//	uint32 LE CRC-32C of everything above
//
// Replay accepts the longest valid record prefix of a journal: a torn
// tail — a record cut anywhere, even mid-header — ends the journal and
// is truncated by recovery, never served as data. A snapshot, in
// contrast, was published by an atomic rename and must verify in full
// or it is ErrCorrupt.
const (
	magicLen     = 8
	recHeaderLen = 8
	snapHeadLen  = magicLen + 8 + 8
	opPut        = 0x01

	// maxRecordSize bounds a single record; a length field above it is
	// treated as garbage (end of valid prefix), which also keeps a fuzzed
	// journal from demanding absurd allocations.
	maxRecordSize = 64 << 20
)

var (
	journalMagic = []byte("SDNWAL1\n")
	snapMagic    = []byte("SDNSNP1\n")
	crcTable     = crc32.MakeTable(crc32.Castagnoli)
)

// ErrCorrupt reports data that cannot be explained by a torn write:
// a journal whose header is not ours, or a published snapshot whose
// checksum fails. It is deliberately loud — recovery never silently
// repairs what the crash model cannot have produced.
var ErrCorrupt = errors.New("durable: corrupt state")

// Record is one journal entry: Value stored under Key.
type Record struct {
	Key   string
	Value []byte
}

// appendRecord encodes r onto dst.
func appendRecord(dst []byte, r Record) []byte {
	payload := make([]byte, 0, 5+len(r.Key)+len(r.Value))
	payload = append(payload, opPut)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(r.Key)))
	payload = append(payload, r.Key...)
	payload = append(payload, r.Value...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, crcTable))
	return append(dst, payload...)
}

// parseRecord decodes the record at the head of data, returning the
// bytes consumed. ok is false when the bytes do not form a complete,
// checksum-valid, structurally-valid record.
func parseRecord(data []byte) (rec Record, n int, ok bool) {
	if len(data) < recHeaderLen {
		return Record{}, 0, false
	}
	plen := binary.LittleEndian.Uint32(data)
	if plen < 5 || plen > maxRecordSize || int64(plen) > int64(len(data)-recHeaderLen) {
		return Record{}, 0, false
	}
	want := binary.LittleEndian.Uint32(data[4:])
	payload := data[recHeaderLen : recHeaderLen+int(plen)]
	if crc32.Checksum(payload, crcTable) != want {
		return Record{}, 0, false
	}
	if payload[0] != opPut {
		return Record{}, 0, false
	}
	klen := binary.LittleEndian.Uint32(payload[1:])
	if int64(klen) > int64(len(payload)-5) {
		return Record{}, 0, false
	}
	rec.Key = string(payload[5 : 5+klen])
	rec.Value = append([]byte(nil), payload[5+klen:]...)
	return rec, recHeaderLen + int(plen), true
}

// ReplayJournal decodes a journal image, returning the records of its
// longest valid prefix and that prefix's length in bytes. Anything
// after valid — a torn tail, a bit-flipped record, garbage — is simply
// not part of the journal; recovery truncates it. The only fatal shape
// is a header that is positively not ours (ErrCorrupt): a full 8 bytes
// that differ from the magic cannot come from a torn write to a real
// journal.
//
// Invariant (fuzz-checked): re-encoding the returned records after the
// magic reproduces data[:valid] byte for byte — replay never invents,
// reorders, or accepts unverifiable data.
func ReplayJournal(data []byte) (recs []Record, valid int, err error) {
	if len(data) < magicLen {
		if bytes.Equal(data, journalMagic[:len(data)]) {
			return nil, 0, nil // torn header: rewrite from scratch
		}
		return nil, 0, ErrCorrupt
	}
	if !bytes.Equal(data[:magicLen], journalMagic) {
		return nil, 0, ErrCorrupt
	}
	off := magicLen
	for {
		rec, n, ok := parseRecord(data[off:])
		if !ok {
			return recs, off, nil
		}
		recs = append(recs, rec)
		off += n
	}
}

// encodeSnapshot builds a snapshot image for gen holding recs.
func encodeSnapshot(gen uint64, recs []Record) []byte {
	buf := append([]byte(nil), snapMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, gen)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(recs)))
	for _, r := range recs {
		buf = appendRecord(buf, r)
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))
}

// decodeSnapshot verifies and decodes a snapshot image. Unlike journal
// replay there is no tolerance here: the file only exists under its
// final name if the rename committed, so any mismatch is ErrCorrupt.
func decodeSnapshot(data []byte) (gen uint64, recs []Record, err error) {
	if len(data) < snapHeadLen+4 || !bytes.Equal(data[:magicLen], snapMagic) {
		return 0, nil, ErrCorrupt
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(tail) {
		return 0, nil, ErrCorrupt
	}
	gen = binary.LittleEndian.Uint64(data[magicLen:])
	count := binary.LittleEndian.Uint64(data[magicLen+8:])
	off := snapHeadLen
	for i := uint64(0); i < count; i++ {
		rec, n, ok := parseRecord(body[off:])
		if !ok {
			return 0, nil, ErrCorrupt
		}
		recs = append(recs, rec)
		off += n
	}
	if off != len(body) {
		return 0, nil, ErrCorrupt
	}
	return gen, recs, nil
}
