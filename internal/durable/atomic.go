package durable

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to path so that a crash at any point
// leaves either the old file or the new one, never a torn mix: the
// data goes to a temp file in the same directory (same filesystem, so
// the rename is atomic), is fsynced, and only then renamed over path.
// The directory entry is fsynced best-effort afterwards.
//
// This is the drop-in replacement for the bare os.WriteFile/os.Create
// output paths in cmd/sdnbugs: an interrupted `report`, `generate` or
// `experiments` run must never leave a truncated artifact behind.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+tmpExt+"-*")
	if err != nil {
		return fmt.Errorf("durable: create temp for %s: %w", path, err)
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		_ = f.Close()
		_ = os.Remove(tmp)
		return err
	}
	if _, err := f.Write(data); err != nil {
		return cleanup(fmt.Errorf("durable: write %s: %w", path, err))
	}
	if err := f.Sync(); err != nil {
		return cleanup(fmt.Errorf("durable: sync %s: %w", path, err))
	}
	if err := f.Chmod(perm); err != nil {
		return cleanup(fmt.Errorf("durable: chmod %s: %w", path, err))
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("durable: close %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("durable: publish %s: %w", path, err)
	}
	// Make the rename itself durable. Failure here is not reported:
	// the data is intact either way, only its directory entry may
	// replay the rename after a power loss.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}
