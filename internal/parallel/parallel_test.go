package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		for _, n := range []int{0, 1, 3, 100} {
			counts := make([]atomic.Int32, n)
			ForEach(workers, n, func(i int) { counts[i].Add(1) })
			for i := range counts {
				if c := counts[i].Load(); c != 1 {
					t.Errorf("workers=%d n=%d: index %d ran %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestForEachDeterministicReduction(t *testing.T) {
	// The pattern every caller relies on: each item fills its slot,
	// the reduction in index order is identical for any worker count.
	build := func(workers int) []float64 {
		out := make([]float64, 50)
		ForEach(workers, len(out), func(i int) { out[i] = float64(i) * 1.25 })
		return out
	}
	serial := build(1)
	for _, workers := range []int{2, 8} {
		par := build(workers)
		for i := range serial {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d slot %d = %v, want %v", workers, i, par[i], serial[i])
			}
		}
	}
}

func TestForEachSerialOnCallingGoroutine(t *testing.T) {
	// workers == 1 must not spawn: item order is then the loop order.
	var order []int
	ForEach(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order = %v", order)
		}
	}
}

func TestMapErrReturnsLowestIndexError(t *testing.T) {
	errA := errors.New("a")
	err := MapErr(4, 10, func(i int) error {
		switch i {
		case 3:
			return errA
		case 7:
			return fmt.Errorf("b")
		}
		return nil
	})
	if !errors.Is(err, errA) {
		t.Errorf("err = %v, want the index-3 error regardless of scheduling", err)
	}
	if err := MapErr(4, 10, func(int) error { return nil }); err != nil {
		t.Errorf("err = %v, want nil", err)
	}
	if err := MapErr(4, 0, func(int) error { return errors.New("x") }); err != nil {
		t.Errorf("n=0 err = %v, want nil", err)
	}
}
