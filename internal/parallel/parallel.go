// Package parallel provides the small bounded-fan-out helper the
// study's training pipeline uses to spread independent work items
// (validation grid cells, Word2Vec sentence shards, batch
// predictions) across a worker pool while keeping results
// deterministic: workers write only to their own item's slot, and
// callers reduce the slots in index order afterwards.
//
// The contract that keeps parallel runs byte-identical to serial ones
// is simply that fn(i) must depend only on i and on data that no
// other item mutates. ForEach guarantees every index in [0, n) runs
// exactly once and that all writes made by the fns happen-before
// ForEach returns.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a requested pool size: values <= 0 mean
// GOMAXPROCS, everything else is returned unchanged.
func Workers(requested int) int {
	if requested <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// ForEach runs fn(i) for every i in [0, n) on at most workers
// goroutines (workers <= 0 means GOMAXPROCS). It returns after every
// item has finished. With workers == 1 — or n < 2 — it degenerates to
// a plain loop on the calling goroutine, so serial paths pay no
// synchronization cost.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	// Atomic work-stealing counter: cheaper than a channel for the
	// short, uniform item lists the pipeline fans out, and items are
	// claimed in index order so early indices start first.
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// MapErr runs fn for every index, collecting each item's error. It
// returns the error of the lowest-indexed item that failed, or nil —
// the deterministic analogue of a fail-fast serial loop (later items
// still run; the winner does not depend on goroutine scheduling).
func MapErr(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	ForEach(workers, n, func(i int) {
		errs[i] = fn(i)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
