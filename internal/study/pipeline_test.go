package study

import (
	"errors"
	"testing"

	"sdnbugs/internal/taxonomy"
	"sdnbugs/internal/tracker"
)

func TestPipelineFitPredict(t *testing.T) {
	s := manualStudy(t)
	p := NewPipeline(PipelineConfig{Seed: 1})
	if err := p.Fit(s.Bugs()); err != nil {
		t.Fatal(err)
	}
	// Predictions must be valid, complete labels.
	for _, b := range s.Bugs()[:20] {
		l, err := p.Predict(b.Issue)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Validate(); err != nil {
			t.Fatalf("predicted label invalid: %v", err)
		}
		if !l.Complete() {
			t.Fatalf("predicted label incomplete: %+v", l)
		}
	}
}

func TestPipelineTrainingAccuracy(t *testing.T) {
	// On its own training set the pipeline should recover bug type and
	// trigger well — the text carries those signals.
	s := manualStudy(t)
	p := NewPipeline(PipelineConfig{Seed: 2})
	if err := p.Fit(s.Bugs()); err != nil {
		t.Fatal(err)
	}
	var typeHits, trigHits int
	for _, b := range s.Bugs() {
		l, err := p.Predict(b.Issue)
		if err != nil {
			t.Fatal(err)
		}
		if l.Type == b.Label.Type {
			typeHits++
		}
		if l.Trigger == b.Label.Trigger {
			trigHits++
		}
	}
	n := float64(s.Len())
	if acc := float64(typeHits) / n; acc < 0.90 {
		t.Errorf("training bug-type accuracy = %.3f, want >= 0.90", acc)
	}
	if acc := float64(trigHits) / n; acc < 0.80 {
		t.Errorf("training trigger accuracy = %.3f, want >= 0.80", acc)
	}
}

func TestPredictBeforeFit(t *testing.T) {
	p := NewPipeline(PipelineConfig{})
	if _, err := p.Predict(tracker.Issue{Description: "x"}); !errors.Is(err, ErrPipelineNotFitted) {
		t.Errorf("want ErrPipelineNotFitted, got %v", err)
	}
}

func TestPipelineNeedsFeatures(t *testing.T) {
	s := manualStudy(t)
	p := NewPipeline(PipelineConfig{DisableTFIDF: true, DisableW2V: true})
	if err := p.Fit(s.Bugs()); err == nil {
		t.Error("want error when both feature blocks disabled")
	}
}

func TestValidateProtocol(t *testing.T) {
	// E9: the paper's 2/3–1/3 validation. Bug type should validate at
	// ≈96 %, symptoms ≈86 %, and fixes poorly.
	s := manualStudy(t)
	results, err := Validate(s.Bugs(), PipelineConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("got %d dimensions", len(results))
	}
	byDim := map[taxonomy.Dimension]ValidationResult{}
	for _, r := range results {
		byDim[r.Dimension] = r
	}
	typeAcc := byDim[taxonomy.DimType].Accuracies[ModelSVM]
	symAcc := byDim[taxonomy.DimSymptom].Accuracies[ModelSVM]
	fixAcc := byDim[taxonomy.DimFix].Accuracies[ModelSVM]
	if typeAcc < 0.88 {
		t.Errorf("SVM bug-type accuracy = %.3f, paper reports ≈ 0.96", typeAcc)
	}
	if symAcc < 0.70 || symAcc > 0.98 {
		t.Errorf("SVM symptom accuracy = %.3f, paper reports ≈ 0.86", symAcc)
	}
	if !(fixAcc < symAcc) {
		t.Errorf("fix accuracy %.3f should be worse than symptom %.3f (paper: fixes unpredictable)", fixAcc, symAcc)
	}
	if !(typeAcc >= symAcc) {
		t.Errorf("bug type (%.3f) should be easier than symptoms (%.3f)", typeAcc, symAcc)
	}
	// Every model reports an accuracy in [0, 1].
	for _, r := range results {
		for m, a := range r.Accuracies {
			if a < 0 || a > 1 {
				t.Errorf("%v/%s accuracy %v out of range", r.Dimension, m, a)
			}
		}
		if r.Best == "" {
			t.Errorf("%v has no best model", r.Dimension)
		}
	}
}

func TestValidateTooFewBugs(t *testing.T) {
	s := manualStudy(t)
	if _, err := Validate(s.Bugs()[:5], PipelineConfig{}); err == nil {
		t.Error("want error for tiny training set")
	}
}

func TestPredictAllOnFullCorpus(t *testing.T) {
	// E12: train on the manual set, predict the whole corpus, and check
	// the Figure 13 headline — configuration is the dominant predicted
	// trigger and network events a small share.
	manual := manualStudy(t)
	full := fullStudy(t)
	p := NewPipeline(PipelineConfig{Seed: 4})
	if err := p.Fit(manual.Bugs()); err != nil {
		t.Fatal(err)
	}
	issues := make([]tracker.Issue, 0, 200)
	for i, b := range full.Bugs() {
		if i%4 == 0 { // subsample for test speed
			issues = append(issues, b.Issue)
		}
	}
	labels, err := p.PredictAll(issues)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[taxonomy.Trigger]int{}
	for _, l := range labels {
		counts[l.Trigger]++
	}
	n := float64(len(labels))
	if frac := float64(counts[taxonomy.TriggerConfiguration]) / n; frac < 0.25 {
		t.Errorf("predicted configuration share = %.3f, should be dominant", frac)
	}
	if frac := float64(counts[taxonomy.TriggerNetworkEvent]) / n; frac > 0.40 {
		t.Errorf("predicted network-event share = %.3f, should be small", frac)
	}
}
