package study

import (
	"errors"
	"fmt"

	"sdnbugs/internal/mathx"
	"sdnbugs/internal/ml"
	"sdnbugs/internal/ml/svm"
	"sdnbugs/internal/nlp"
	"sdnbugs/internal/nlp/tfidf"
	"sdnbugs/internal/nlp/word2vec"
	"sdnbugs/internal/parallel"
	"sdnbugs/internal/taxonomy"
	"sdnbugs/internal/tracker"
)

// PipelineConfig controls the NLP auto-classification pipeline (§II-C).
type PipelineConfig struct {
	// Seed drives every random component.
	Seed int64
	// MaxVocab caps the TF-IDF vocabulary (default 400).
	MaxVocab int
	// W2VDim is the Word2Vec embedding size (default 40).
	W2VDim int
	// W2VEpochs is the Word2Vec training epochs (default 5).
	W2VEpochs int
	// UseTFIDF / UseW2V select the feature blocks; both default on
	// (the paper concatenates keyword features with embeddings).
	// DisableTFIDF / DisableW2V turn one off for ablations.
	DisableTFIDF bool
	DisableW2V   bool
	// DisableScaling turns off feature normalization (the paper found
	// "SVM with normalization" best — this is the ablation knob).
	DisableScaling bool
	// Workers bounds the worker pool the pipeline and validation use
	// for independent work (per-dimension classifier training, batch
	// prediction, the repeat×dimension×model validation grid);
	// 0 means GOMAXPROCS, 1 runs serially. Workers never changes any
	// numeric result — parallel stages write disjoint slots and are
	// reduced in deterministic index order — so the same seed yields
	// byte-identical output at every setting.
	Workers int
}

func (c PipelineConfig) withDefaults() PipelineConfig {
	if c.MaxVocab <= 0 {
		c.MaxVocab = 400
	}
	if c.W2VDim <= 0 {
		c.W2VDim = 40
	}
	if c.W2VEpochs <= 0 {
		c.W2VEpochs = 5
	}
	return c
}

// ErrPipelineNotFitted is returned by Predict before Fit.
var ErrPipelineNotFitted = errors.New("study: pipeline not fitted")

// Pipeline maps bug-report text to predicted taxonomy labels: TF-IDF
// and Word2Vec features feeding one multiclass SVM per dimension, plus
// a refinement model for external-call kinds (needed for Figure 13).
type Pipeline struct {
	cfg PipelineConfig

	vec  *tfidf.Vectorizer
	w2v  *word2vec.Model
	clfs map[taxonomy.Dimension]ml.Classifier

	extClf ml.Classifier
}

// NewPipeline builds an unfitted pipeline.
func NewPipeline(cfg PipelineConfig) *Pipeline {
	return &Pipeline{
		cfg:  cfg.withDefaults(),
		clfs: make(map[taxonomy.Dimension]ml.Classifier),
	}
}

// featurize builds the feature matrix for the given token lists.
// "Normalization" in the paper's sense is unit-L2 feature vectors, the
// standard conditioning for linear SVMs on text features.
func (p *Pipeline) featurize(docs [][]string) (*mathx.Matrix, error) {
	if p.vec == nil && p.w2v == nil {
		return nil, ErrPipelineNotFitted
	}
	return buildFeatures(p.vec, p.w2v, docs, !p.cfg.DisableScaling)
}

// tokenizeAll preprocesses every bug's text.
func tokenizeAll(bugs []LabeledBug) [][]string {
	docs := make([][]string, len(bugs))
	for i, b := range bugs {
		docs[i] = nlp.Preprocess(b.Issue.Text())
	}
	return docs
}

// labelIndex maps a tag to its dense class id within dimension d.
func labelIndex(d taxonomy.Dimension, tag string) (int, error) {
	for i, c := range d.Categories() {
		if c == tag {
			return i, nil
		}
	}
	return 0, fmt.Errorf("study: tag %q not in dimension %v", tag, d)
}

// Fit learns features on all texts and trains one classifier per
// taxonomy dimension from the bugs' labels.
func (p *Pipeline) Fit(bugs []LabeledBug) error {
	if len(bugs) == 0 {
		return ErrNoBugs
	}
	docs := tokenizeAll(bugs)
	if err := p.fitFeatures(docs); err != nil {
		return err
	}
	x, err := p.featurize(docs)
	if err != nil {
		return err
	}
	// Per-dimension classifiers are independent (each seeds its own
	// RNG from Seed+dimension), so they train on the worker pool; each
	// writes only its own slot and the error, if any, is the one the
	// sequential loop would have hit first.
	dims := taxonomy.Dimensions()
	clfs := make([]ml.Classifier, len(dims))
	err = parallel.MapErr(p.cfg.Workers, len(dims), func(di int) error {
		d := dims[di]
		y := make([]int, len(bugs))
		for i, b := range bugs {
			idx, err := labelIndex(d, b.Label.Tag(d))
			if err != nil {
				return fmt.Errorf("study: bug %s: %w", b.Issue.ID, err)
			}
			y[i] = idx
		}
		clf := &svm.Multiclass{Epochs: 80, Lambda: 1e-4, Balanced: true, Seed: p.cfg.Seed + int64(d)}
		if err := clf.Fit(x, y); err != nil {
			return fmt.Errorf("study: fit %v classifier: %w", d, err)
		}
		clfs[di] = clf
		return nil
	})
	if err != nil {
		return err
	}
	for di, d := range dims {
		p.clfs[d] = clfs[di]
	}
	return p.fitExternalKind(bugs, docs, x)
}

func (p *Pipeline) fitFeatures(docs [][]string) error {
	if !p.cfg.DisableTFIDF {
		p.vec = &tfidf.Vectorizer{MaxVocab: p.cfg.MaxVocab, MinDF: 2}
		if err := p.vec.Fit(docs); err != nil {
			return fmt.Errorf("study: fit tfidf: %w", err)
		}
	}
	if !p.cfg.DisableW2V {
		m, err := word2vec.Train(docs, word2vec.Config{
			Dim:    p.cfg.W2VDim,
			Epochs: p.cfg.W2VEpochs,
			Seed:   p.cfg.Seed,
		})
		if err != nil {
			return fmt.Errorf("study: train word2vec: %w", err)
		}
		p.w2v = m
	}
	if p.vec == nil && p.w2v == nil {
		return errors.New("study: pipeline needs at least one feature block")
	}
	return nil
}

// fitExternalKind trains the refinement model distinguishing system /
// third-party / application calls among external-call bugs.
func (p *Pipeline) fitExternalKind(bugs []LabeledBug, docs [][]string, x *mathx.Matrix) error {
	var rows []int
	var y []int
	for i, b := range bugs {
		if b.Label.Trigger != taxonomy.TriggerExternalCall {
			continue
		}
		rows = append(rows, i)
		y = append(y, int(b.Label.ExternalKind)-1)
	}
	if len(rows) < 10 {
		// Too few external-call bugs: fall back to the majority kind.
		p.extClf = nil
		return nil
	}
	sub := mathx.NewMatrix(len(rows), x.Cols())
	for k, i := range rows {
		copy(sub.Row(k), x.Row(i))
	}
	clf := &svm.Multiclass{Epochs: 80, Lambda: 1e-4, Balanced: true, Seed: p.cfg.Seed + 97}
	if err := clf.Fit(sub, y); err != nil {
		return fmt.Errorf("study: fit external-kind classifier: %w", err)
	}
	p.extClf = clf
	return nil
}

// Predict classifies one issue's text into a full (validated) label.
// Refinement tags the pipeline does not model are filled with the most
// common category so the label always passes taxonomy validation.
func (p *Pipeline) Predict(issue tracker.Issue) (taxonomy.Label, error) {
	if len(p.clfs) == 0 {
		return taxonomy.Label{}, ErrPipelineNotFitted
	}
	doc := nlp.Preprocess(issue.Text())
	x, err := p.featurize([][]string{doc})
	if err != nil {
		return taxonomy.Label{}, err
	}
	feat := x.Row(0)

	var label taxonomy.Label
	for _, d := range taxonomy.Dimensions() {
		cls, err := p.clfs[d].Predict(feat)
		if err != nil {
			return taxonomy.Label{}, fmt.Errorf("study: predict %v: %w", d, err)
		}
		cats := d.Categories()
		if cls < 0 || cls >= len(cats) {
			return taxonomy.Label{}, fmt.Errorf("study: predicted class %d out of range for %v", cls, d)
		}
		if err := label.SetTag(d, cats[cls]); err != nil {
			return taxonomy.Label{}, err
		}
	}

	// Fill refinements so the label validates.
	switch label.Trigger {
	case taxonomy.TriggerExternalCall:
		label.ExternalKind = taxonomy.ThirdPartyCall
		if p.extClf != nil {
			cls, err := p.extClf.Predict(feat)
			if err != nil {
				return taxonomy.Label{}, fmt.Errorf("study: predict external kind: %w", err)
			}
			kinds := taxonomy.ExternalCallKinds()
			if cls >= 0 && cls < len(kinds) {
				label.ExternalKind = kinds[cls]
			}
		}
	case taxonomy.TriggerConfiguration:
		label.ConfigScope = taxonomy.ConfigController
	}
	if label.Symptom == taxonomy.SymptomByzantine {
		label.Byzantine = taxonomy.GrayFailure
	}
	if err := label.Validate(); err != nil {
		return taxonomy.Label{}, fmt.Errorf("study: predicted label invalid: %w", err)
	}
	return label, nil
}

// PredictAll classifies a batch of issues. Predictions are independent
// (the fitted pipeline is read-only), so they run on the worker pool;
// each writes its own slot, and on failure the lowest-index error —
// the one the sequential loop would have returned — wins.
func (p *Pipeline) PredictAll(issues []tracker.Issue) ([]taxonomy.Label, error) {
	out := make([]taxonomy.Label, len(issues))
	err := parallel.MapErr(p.cfg.Workers, len(issues), func(i int) error {
		l, err := p.Predict(issues[i])
		if err != nil {
			return fmt.Errorf("study: predict %s: %w", issues[i].ID, err)
		}
		out[i] = l
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

