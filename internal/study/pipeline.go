package study

import (
	"errors"
	"fmt"

	"sdnbugs/internal/mathx"
	"sdnbugs/internal/ml"
	"sdnbugs/internal/ml/adaboost"
	"sdnbugs/internal/ml/dtree"
	"sdnbugs/internal/ml/pca"
	"sdnbugs/internal/ml/svm"
	"sdnbugs/internal/nlp"
	"sdnbugs/internal/nlp/tfidf"
	"sdnbugs/internal/nlp/word2vec"
	"sdnbugs/internal/taxonomy"
	"sdnbugs/internal/tracker"
)

// PipelineConfig controls the NLP auto-classification pipeline (§II-C).
type PipelineConfig struct {
	// Seed drives every random component.
	Seed int64
	// MaxVocab caps the TF-IDF vocabulary (default 400).
	MaxVocab int
	// W2VDim is the Word2Vec embedding size (default 40).
	W2VDim int
	// W2VEpochs is the Word2Vec training epochs (default 5).
	W2VEpochs int
	// UseTFIDF / UseW2V select the feature blocks; both default on
	// (the paper concatenates keyword features with embeddings).
	// DisableTFIDF / DisableW2V turn one off for ablations.
	DisableTFIDF bool
	DisableW2V   bool
	// DisableScaling turns off feature normalization (the paper found
	// "SVM with normalization" best — this is the ablation knob).
	DisableScaling bool
}

func (c PipelineConfig) withDefaults() PipelineConfig {
	if c.MaxVocab <= 0 {
		c.MaxVocab = 400
	}
	if c.W2VDim <= 0 {
		c.W2VDim = 40
	}
	if c.W2VEpochs <= 0 {
		c.W2VEpochs = 5
	}
	return c
}

// ErrPipelineNotFitted is returned by Predict before Fit.
var ErrPipelineNotFitted = errors.New("study: pipeline not fitted")

// Pipeline maps bug-report text to predicted taxonomy labels: TF-IDF
// and Word2Vec features feeding one multiclass SVM per dimension, plus
// a refinement model for external-call kinds (needed for Figure 13).
type Pipeline struct {
	cfg PipelineConfig

	vec  *tfidf.Vectorizer
	w2v  *word2vec.Model
	clfs map[taxonomy.Dimension]ml.Classifier

	extClf ml.Classifier
}

// NewPipeline builds an unfitted pipeline.
func NewPipeline(cfg PipelineConfig) *Pipeline {
	return &Pipeline{
		cfg:  cfg.withDefaults(),
		clfs: make(map[taxonomy.Dimension]ml.Classifier),
	}
}

// featurize builds the feature matrix for the given token lists.
func (p *Pipeline) featurize(docs [][]string) (*mathx.Matrix, error) {
	if p.vec == nil && p.w2v == nil {
		return nil, ErrPipelineNotFitted
	}
	var dim int
	if p.vec != nil {
		dim += p.vec.VocabSize()
	}
	if p.w2v != nil {
		dim += p.w2v.Dim()
	}
	x := mathx.NewMatrix(len(docs), dim)
	for i, doc := range docs {
		row := x.Row(i)
		off := 0
		if p.vec != nil {
			v, err := p.vec.Transform(doc)
			if err != nil {
				return nil, fmt.Errorf("study: tfidf transform: %w", err)
			}
			copy(row[:len(v)], v)
			off = len(v)
		}
		if p.w2v != nil {
			copy(row[off:], p.w2v.DocVector(doc))
		}
		if !p.cfg.DisableScaling {
			// "Normalization" in the paper's sense: unit-L2 feature
			// vectors, the standard conditioning for linear SVMs on
			// text features.
			mathx.Normalize(row)
		}
	}
	return x, nil
}

// tokenizeAll preprocesses every bug's text.
func tokenizeAll(bugs []LabeledBug) [][]string {
	docs := make([][]string, len(bugs))
	for i, b := range bugs {
		docs[i] = nlp.Preprocess(b.Issue.Text())
	}
	return docs
}

// labelIndex maps a tag to its dense class id within dimension d.
func labelIndex(d taxonomy.Dimension, tag string) (int, error) {
	for i, c := range d.Categories() {
		if c == tag {
			return i, nil
		}
	}
	return 0, fmt.Errorf("study: tag %q not in dimension %v", tag, d)
}

// Fit learns features on all texts and trains one classifier per
// taxonomy dimension from the bugs' labels.
func (p *Pipeline) Fit(bugs []LabeledBug) error {
	if len(bugs) == 0 {
		return ErrNoBugs
	}
	docs := tokenizeAll(bugs)
	if err := p.fitFeatures(docs); err != nil {
		return err
	}
	x, err := p.featurize(docs)
	if err != nil {
		return err
	}
	for _, d := range taxonomy.Dimensions() {
		y := make([]int, len(bugs))
		for i, b := range bugs {
			idx, err := labelIndex(d, b.Label.Tag(d))
			if err != nil {
				return fmt.Errorf("study: bug %s: %w", b.Issue.ID, err)
			}
			y[i] = idx
		}
		clf := &svm.Multiclass{Epochs: 80, Lambda: 1e-4, Balanced: true, Seed: p.cfg.Seed + int64(d)}
		if err := clf.Fit(x, y); err != nil {
			return fmt.Errorf("study: fit %v classifier: %w", d, err)
		}
		p.clfs[d] = clf
	}
	return p.fitExternalKind(bugs, docs, x)
}

func (p *Pipeline) fitFeatures(docs [][]string) error {
	if !p.cfg.DisableTFIDF {
		p.vec = &tfidf.Vectorizer{MaxVocab: p.cfg.MaxVocab, MinDF: 2}
		if err := p.vec.Fit(docs); err != nil {
			return fmt.Errorf("study: fit tfidf: %w", err)
		}
	}
	if !p.cfg.DisableW2V {
		m, err := word2vec.Train(docs, word2vec.Config{
			Dim:    p.cfg.W2VDim,
			Epochs: p.cfg.W2VEpochs,
			Seed:   p.cfg.Seed,
		})
		if err != nil {
			return fmt.Errorf("study: train word2vec: %w", err)
		}
		p.w2v = m
	}
	if p.vec == nil && p.w2v == nil {
		return errors.New("study: pipeline needs at least one feature block")
	}
	return nil
}

// fitExternalKind trains the refinement model distinguishing system /
// third-party / application calls among external-call bugs.
func (p *Pipeline) fitExternalKind(bugs []LabeledBug, docs [][]string, x *mathx.Matrix) error {
	var rows []int
	var y []int
	for i, b := range bugs {
		if b.Label.Trigger != taxonomy.TriggerExternalCall {
			continue
		}
		rows = append(rows, i)
		y = append(y, int(b.Label.ExternalKind)-1)
	}
	if len(rows) < 10 {
		// Too few external-call bugs: fall back to the majority kind.
		p.extClf = nil
		return nil
	}
	sub := mathx.NewMatrix(len(rows), x.Cols())
	for k, i := range rows {
		copy(sub.Row(k), x.Row(i))
	}
	clf := &svm.Multiclass{Epochs: 80, Lambda: 1e-4, Balanced: true, Seed: p.cfg.Seed + 97}
	if err := clf.Fit(sub, y); err != nil {
		return fmt.Errorf("study: fit external-kind classifier: %w", err)
	}
	p.extClf = clf
	return nil
}

// Predict classifies one issue's text into a full (validated) label.
// Refinement tags the pipeline does not model are filled with the most
// common category so the label always passes taxonomy validation.
func (p *Pipeline) Predict(issue tracker.Issue) (taxonomy.Label, error) {
	if len(p.clfs) == 0 {
		return taxonomy.Label{}, ErrPipelineNotFitted
	}
	doc := nlp.Preprocess(issue.Text())
	x, err := p.featurize([][]string{doc})
	if err != nil {
		return taxonomy.Label{}, err
	}
	feat := x.Row(0)

	var label taxonomy.Label
	for _, d := range taxonomy.Dimensions() {
		cls, err := p.clfs[d].Predict(feat)
		if err != nil {
			return taxonomy.Label{}, fmt.Errorf("study: predict %v: %w", d, err)
		}
		cats := d.Categories()
		if cls < 0 || cls >= len(cats) {
			return taxonomy.Label{}, fmt.Errorf("study: predicted class %d out of range for %v", cls, d)
		}
		if err := label.SetTag(d, cats[cls]); err != nil {
			return taxonomy.Label{}, err
		}
	}

	// Fill refinements so the label validates.
	switch label.Trigger {
	case taxonomy.TriggerExternalCall:
		label.ExternalKind = taxonomy.ThirdPartyCall
		if p.extClf != nil {
			cls, err := p.extClf.Predict(feat)
			if err != nil {
				return taxonomy.Label{}, fmt.Errorf("study: predict external kind: %w", err)
			}
			kinds := taxonomy.ExternalCallKinds()
			if cls >= 0 && cls < len(kinds) {
				label.ExternalKind = kinds[cls]
			}
		}
	case taxonomy.TriggerConfiguration:
		label.ConfigScope = taxonomy.ConfigController
	}
	if label.Symptom == taxonomy.SymptomByzantine {
		label.Byzantine = taxonomy.GrayFailure
	}
	if err := label.Validate(); err != nil {
		return taxonomy.Label{}, fmt.Errorf("study: predicted label invalid: %w", err)
	}
	return label, nil
}

// PredictAll classifies a batch of issues.
func (p *Pipeline) PredictAll(issues []tracker.Issue) ([]taxonomy.Label, error) {
	out := make([]taxonomy.Label, len(issues))
	for i, iss := range issues {
		l, err := p.Predict(iss)
		if err != nil {
			return nil, fmt.Errorf("study: predict %s: %w", iss.ID, err)
		}
		out[i] = l
	}
	return out, nil
}

// ModelName identifies a classifier family in validation results.
type ModelName string

// Model names compared in §II-C.
const (
	ModelSVM       ModelName = "svm"
	ModelSVMNoNorm ModelName = "svm-no-normalization"
	ModelDTree     ModelName = "decision-tree"
	ModelAdaBoost  ModelName = "adaboost"
	ModelPCASVM    ModelName = "pca+svm"
)

// ValidationResult holds per-model test accuracies for one dimension.
type ValidationResult struct {
	Dimension  taxonomy.Dimension
	Accuracies map[ModelName]float64
	// Best is the model with the highest accuracy.
	Best ModelName
}

// Validate reproduces the paper's §II-C protocol: split the manually
// labeled set 2/3 train, 1/3 test; compare SVM (with and without
// normalization), decision tree, AdaBoost, and PCA+SVM per dimension.
// The paper's result: normalized SVM best, ≈96 % on bug type, ≈86 % on
// symptoms, and no model predicts fixes well.
func Validate(bugs []LabeledBug, cfg PipelineConfig) ([]ValidationResult, error) {
	cfg = cfg.withDefaults()
	if len(bugs) < 12 {
		return nil, fmt.Errorf("study: need at least 12 labeled bugs, have %d", len(bugs))
	}
	docs := tokenizeAll(bugs)
	rawCfg := cfg
	rawCfg.DisableScaling = true
	p := NewPipeline(rawCfg)
	if err := p.fitFeatures(docs); err != nil {
		return nil, err
	}
	xRaw, err := p.featurize(docs)
	if err != nil {
		return nil, err
	}
	// L2-normalized copy for the "with normalization" variants.
	xNorm := xRaw.Clone()
	for i := 0; i < xNorm.Rows(); i++ {
		mathx.Normalize(xNorm.Row(i))
	}

	var results []ValidationResult
	for _, d := range taxonomy.Dimensions() {
		y := make([]int, len(bugs))
		for i, b := range bugs {
			idx, err := labelIndex(d, b.Label.Tag(d))
			if err != nil {
				return nil, fmt.Errorf("study: bug %s: %w", b.Issue.ID, err)
			}
			y[i] = idx
		}
		dsRaw, err := ml.NewDataset(xRaw, y)
		if err != nil {
			return nil, err
		}
		dsNorm, err := ml.NewDataset(xNorm, y)
		if err != nil {
			return nil, err
		}
		// The same seed gives both variants the identical split.
		train, test, err := ml.TrainTestSplit(dsRaw, 2.0/3.0, cfg.Seed+int64(d))
		if err != nil {
			return nil, err
		}
		trN, teN, err := ml.TrainTestSplit(dsNorm, 2.0/3.0, cfg.Seed+int64(d))
		if err != nil {
			return nil, err
		}

		res := ValidationResult{Dimension: d, Accuracies: map[ModelName]float64{}}

		models := []struct {
			name       ModelName
			clf        ml.Classifier
			normalized bool
		}{
			{ModelSVM, &svm.Multiclass{Epochs: 80, Lambda: 1e-4, Balanced: true, Seed: cfg.Seed}, true},
			{ModelSVMNoNorm, &svm.Multiclass{Epochs: 80, Lambda: 1e-4, Balanced: true, Seed: cfg.Seed}, false},
			{ModelDTree, &dtree.Tree{MaxDepth: 10}, false},
			{ModelAdaBoost, &adaboost.Ensemble{Rounds: 40}, false},
			{ModelPCASVM, &pca.Reduced{Components: 24, Seed: cfg.Seed, Inner: &svm.Multiclass{Epochs: 80, Lambda: 1e-4, Balanced: true, Seed: cfg.Seed}}, true},
		}
		for _, m := range models {
			trainSet, testSet := train, test
			if m.normalized {
				trainSet, testSet = trN, teN
			}
			acc, err := ml.EvaluateSplit(m.clf, trainSet, testSet)
			if err != nil {
				return nil, fmt.Errorf("study: %v/%s: %w", d, m.name, err)
			}
			res.Accuracies[m.name] = acc
			if res.Best == "" || acc > res.Accuracies[res.Best] {
				res.Best = m.name
			}
		}
		results = append(results, res)
	}
	return results, nil
}

// ValidateRepeated runs Validate across `repeats` different splits and
// returns the per-dimension, per-model mean accuracies. The paper's
// single-split numbers (96 % type, 86 % symptom) sit inside the band
// this estimates more stably.
func ValidateRepeated(bugs []LabeledBug, cfg PipelineConfig, repeats int) ([]ValidationResult, error) {
	if repeats < 1 {
		return nil, fmt.Errorf("study: repeats must be >= 1, got %d", repeats)
	}
	sums := map[taxonomy.Dimension]map[ModelName]float64{}
	for r := 0; r < repeats; r++ {
		runCfg := cfg
		runCfg.Seed = cfg.Seed + int64(r)*101
		results, err := Validate(bugs, runCfg)
		if err != nil {
			return nil, err
		}
		for _, res := range results {
			if sums[res.Dimension] == nil {
				sums[res.Dimension] = map[ModelName]float64{}
			}
			for m, a := range res.Accuracies {
				sums[res.Dimension][m] += a
			}
		}
	}
	var out []ValidationResult
	for _, d := range taxonomy.Dimensions() {
		res := ValidationResult{Dimension: d, Accuracies: map[ModelName]float64{}}
		for m, s := range sums[d] {
			res.Accuracies[m] = s / float64(repeats)
			if res.Best == "" || res.Accuracies[m] > res.Accuracies[res.Best] {
				res.Best = m
			}
		}
		out = append(out, res)
	}
	return out, nil
}
