package study

import (
	"math"
	"sort"

	"sdnbugs/internal/stats"
	"sdnbugs/internal/taxonomy"
)

// CategoryPair is the association between two category tags from
// different taxonomy dimensions, over the study's bugs (Figure 12 and
// the §VII-B correlation discussion).
type CategoryPair struct {
	DimA taxonomy.Dimension
	TagA string
	DimB taxonomy.Dimension
	TagB string
	// Phi is the phi coefficient of the two indicator variables.
	Phi float64
	// Lift is P(A∧B) / (P(A)·P(B)).
	Lift float64
	// Support is the number of bugs carrying both tags.
	Support int
}

// CategoryCorrelations computes the association of every cross-
// dimension tag pair, ordered by descending |phi|. Tags that never
// occur are skipped (their association is undefined).
func (s *Study) CategoryCorrelations() []CategoryPair {
	dims := taxonomy.Dimensions()
	n := len(s.bugs)

	// Precompute indicator counts per (dimension, tag).
	type key struct {
		d   taxonomy.Dimension
		tag string
	}
	has := make(map[key][]bool)
	counts := make(map[key]int)
	for _, d := range dims {
		for _, tag := range d.Categories() {
			k := key{d, tag}
			v := make([]bool, n)
			for i, b := range s.bugs {
				if b.Label.Tag(d) == tag {
					v[i] = true
					counts[k]++
				}
			}
			has[k] = v
		}
	}

	var out []CategoryPair
	for ai, da := range dims {
		for _, db := range dims[ai+1:] {
			for _, ta := range da.Categories() {
				ka := key{da, ta}
				if counts[ka] == 0 {
					continue
				}
				for _, tb := range db.Categories() {
					kb := key{db, tb}
					if counts[kb] == 0 {
						continue
					}
					va, vb := has[ka], has[kb]
					var n11, n10, n01, n00 int
					for i := 0; i < n; i++ {
						switch {
						case va[i] && vb[i]:
							n11++
						case va[i] && !vb[i]:
							n10++
						case !va[i] && vb[i]:
							n01++
						default:
							n00++
						}
					}
					out = append(out, CategoryPair{
						DimA: da, TagA: ta, DimB: db, TagB: tb,
						Phi:     stats.PhiCoefficient(n11, n10, n01, n00),
						Lift:    stats.Lift(n11, counts[ka], counts[kb], n),
						Support: n11,
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return math.Abs(out[i].Phi) > math.Abs(out[j].Phi)
	})
	return out
}

// CorrelationCDF reproduces Figure 12: the empirical CDF of |phi|
// across all category pairs. Most pairs are weakly correlated; the
// long tail holds the strong pairs (paper: 6.28 %).
func (s *Study) CorrelationCDF() (*stats.ECDF, error) {
	pairs := s.CategoryCorrelations()
	sample := make([]float64, 0, len(pairs))
	for _, p := range pairs {
		sample = append(sample, math.Abs(p.Phi))
	}
	return stats.NewECDF(sample)
}

// StrongPairs returns the pairs with |phi| at or above threshold,
// strongest first — the diagnosis shortcuts of §VII-B (e.g. memory ↔
// deterministic, third-party trigger ↔ add-compatibility fix).
func (s *Study) StrongPairs(threshold float64) []CategoryPair {
	var out []CategoryPair
	for _, p := range s.CategoryCorrelations() {
		if math.Abs(p.Phi) >= threshold {
			out = append(out, p)
		}
	}
	return out
}

// StrongFraction returns the share of category pairs whose |phi|
// reaches threshold (paper: 6.28 % at the knee of Figure 12).
func (s *Study) StrongFraction(threshold float64) float64 {
	pairs := s.CategoryCorrelations()
	if len(pairs) == 0 {
		return 0
	}
	strong := 0
	for _, p := range pairs {
		if math.Abs(p.Phi) >= threshold {
			strong++
		}
	}
	return float64(strong) / float64(len(pairs))
}
