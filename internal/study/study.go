// Package study is the analysis engine of the reproduction: it takes a
// labeled bug corpus and computes every distribution, CDF, correlation
// and guideline the paper reports for RQ1–RQ5 (Sections III–V and VII).
package study

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"sdnbugs/internal/stats"
	"sdnbugs/internal/taxonomy"
	"sdnbugs/internal/tracker"
)

// ErrNoBugs is returned when an analysis has no bugs to work on.
var ErrNoBugs = errors.New("study: no bugs")

// LabeledBug is one issue with its taxonomy label (manual ground truth
// or NLP prediction, depending on the pipeline stage).
type LabeledBug struct {
	Issue tracker.Issue
	Label taxonomy.Label
}

// Study is an analyzable collection of labeled bugs.
type Study struct {
	bugs []LabeledBug
}

// New builds a Study, rejecting structurally invalid labels.
func New(bugs []LabeledBug) (*Study, error) {
	if len(bugs) == 0 {
		return nil, ErrNoBugs
	}
	for i, b := range bugs {
		if err := b.Label.Validate(); err != nil {
			return nil, fmt.Errorf("study: bug %d (%s): %w", i, b.Issue.ID, err)
		}
	}
	cp := make([]LabeledBug, len(bugs))
	copy(cp, bugs)
	return &Study{bugs: cp}, nil
}

// Len returns the number of bugs in the study.
func (s *Study) Len() int { return len(s.bugs) }

// Bugs returns the labeled bugs (callers must not modify).
func (s *Study) Bugs() []LabeledBug { return s.bugs }

// Filter returns a sub-study of bugs satisfying pred, or ErrNoBugs if
// none do.
func (s *Study) Filter(pred func(LabeledBug) bool) (*Study, error) {
	var out []LabeledBug
	for _, b := range s.bugs {
		if pred(b) {
			out = append(out, b)
		}
	}
	return New(out)
}

// ByController returns the sub-study of one controller's bugs.
func (s *Study) ByController(c tracker.Controller) (*Study, error) {
	return s.Filter(func(b LabeledBug) bool { return b.Issue.Controller == c })
}

// Share is one category's share of a distribution.
type Share struct {
	Category string  `json:"category"`
	Count    int     `json:"count"`
	Fraction float64 `json:"fraction"`
}

// Distribution computes the share of each category of dimension d,
// in canonical category order. Bugs whose tag is unknown are counted
// under "unknown" and appended last when present.
func (s *Study) Distribution(d taxonomy.Dimension) []Share {
	counts := map[string]int{}
	for _, b := range s.bugs {
		counts[b.Label.Tag(d)]++
	}
	var out []Share
	n := float64(len(s.bugs))
	for _, cat := range d.Categories() {
		out = append(out, Share{Category: cat, Count: counts[cat], Fraction: float64(counts[cat]) / n})
	}
	if u := counts["unknown"]; u > 0 {
		out = append(out, Share{Category: "unknown", Count: u, Fraction: float64(u) / n})
	}
	return out
}

// Fraction returns the share of bugs satisfying pred.
func (s *Study) Fraction(pred func(LabeledBug) bool) float64 {
	hits := 0
	for _, b := range s.bugs {
		if pred(b) {
			hits++
		}
	}
	return float64(hits) / float64(len(s.bugs))
}

// DeterminismByController reproduces §III: the deterministic share per
// controller (paper: FAUCET 96 %, ONOS 94 %, CORD 94 %).
func (s *Study) DeterminismByController() map[tracker.Controller]float64 {
	out := make(map[tracker.Controller]float64)
	for _, c := range tracker.Controllers() {
		sub, err := s.ByController(c)
		if err != nil {
			continue
		}
		out[c] = sub.Fraction(func(b LabeledBug) bool {
			return b.Label.Type == taxonomy.Deterministic
		})
	}
	return out
}

// ByzantineBreakdown reproduces §IV's refinement of byzantine bugs
// (gray failures / stalling / incorrect behaviour), as fractions of the
// byzantine bugs.
func (s *Study) ByzantineBreakdown() map[taxonomy.ByzantineMode]float64 {
	counts := map[taxonomy.ByzantineMode]int{}
	total := 0
	for _, b := range s.bugs {
		if b.Label.Symptom == taxonomy.SymptomByzantine {
			counts[b.Label.Byzantine]++
			total++
		}
	}
	out := make(map[taxonomy.ByzantineMode]float64)
	if total == 0 {
		return out
	}
	for _, m := range taxonomy.ByzantineModes() {
		out[m] = float64(counts[m]) / float64(total)
	}
	return out
}

// CauseBySymptom reproduces Figure 2: for each symptom, the root-cause
// distribution, per controller.
func (s *Study) CauseBySymptom(c tracker.Controller, sym taxonomy.Symptom) ([]Share, error) {
	sub, err := s.Filter(func(b LabeledBug) bool {
		return b.Issue.Controller == c && b.Label.Symptom == sym
	})
	if err != nil {
		return nil, fmt.Errorf("study: %s/%s: %w", c, sym, err)
	}
	return sub.Distribution(taxonomy.DimCause), nil
}

// ConfigSubcategories reproduces Table III: the configuration-scope
// split among configuration-triggered bugs, per controller.
func (s *Study) ConfigSubcategories(c tracker.Controller) (map[taxonomy.ConfigScope]float64, error) {
	sub, err := s.Filter(func(b LabeledBug) bool {
		return b.Issue.Controller == c && b.Label.Trigger == taxonomy.TriggerConfiguration
	})
	if err != nil {
		return nil, fmt.Errorf("study: config bugs for %s: %w", c, err)
	}
	out := make(map[taxonomy.ConfigScope]float64)
	for _, scope := range taxonomy.ConfigScopes() {
		out[scope] = sub.Fraction(func(b LabeledBug) bool { return b.Label.ConfigScope == scope })
	}
	return out, nil
}

// FixAnalysis reproduces §V-A's fix findings.
type FixAnalysis struct {
	// ConfigBugsFixedByConfig is the share of configuration-triggered
	// bugs resolved by changing configuration (paper: 25 %).
	ConfigBugsFixedByConfig float64
	// ExternalCompatibilityFixes is the share of external-call bugs
	// fixed by compatibility changes or package upgrades (paper: 41.4 %).
	ExternalCompatibilityFixes float64
	// NetworkEventAddLogic is the share of network-event bugs fixed by
	// adding logic or exception handling.
	NetworkEventAddLogic float64
}

// AnalyzeFixes computes FixAnalysis over the study.
func (s *Study) AnalyzeFixes() (FixAnalysis, error) {
	var out FixAnalysis
	conf, err := s.Filter(func(b LabeledBug) bool { return b.Label.Trigger == taxonomy.TriggerConfiguration })
	if err != nil {
		return out, fmt.Errorf("study: no configuration bugs: %w", err)
	}
	out.ConfigBugsFixedByConfig = conf.Fraction(func(b LabeledBug) bool {
		return b.Label.Fix == taxonomy.FixConfiguration
	})
	ext, err := s.Filter(func(b LabeledBug) bool { return b.Label.Trigger == taxonomy.TriggerExternalCall })
	if err != nil {
		return out, fmt.Errorf("study: no external-call bugs: %w", err)
	}
	out.ExternalCompatibilityFixes = ext.Fraction(func(b LabeledBug) bool {
		return b.Label.Fix == taxonomy.FixAddCompatibility || b.Label.Fix == taxonomy.FixUpgradePackages
	})
	net, err := s.Filter(func(b LabeledBug) bool { return b.Label.Trigger == taxonomy.TriggerNetworkEvent })
	if err != nil {
		return out, fmt.Errorf("study: no network-event bugs: %w", err)
	}
	out.NetworkEventAddLogic = net.Fraction(func(b LabeledBug) bool {
		return b.Label.Fix == taxonomy.FixAddLogic
	})
	return out, nil
}

// ResolutionCDF reproduces Figure 7: the empirical CDF of resolution
// time (in days) for one controller and trigger. Bugs without a known
// resolution time (open bugs; all GitHub-mined bugs) are skipped.
func (s *Study) ResolutionCDF(c tracker.Controller, trig taxonomy.Trigger) (*stats.ECDF, error) {
	var sample []float64
	for _, b := range s.bugs {
		if b.Issue.Controller != c || b.Label.Trigger != trig {
			continue
		}
		if d, ok := b.Issue.ResolutionTime(); ok {
			sample = append(sample, d.Hours()/24)
		}
	}
	e, err := stats.NewECDF(sample)
	if err != nil {
		return nil, fmt.Errorf("study: resolution CDF %s/%s: %w", c, trig, err)
	}
	return e, nil
}

// ReleaseBurst reproduces §II-B's observation that bug creation bursts
// around releases: it returns the share of bugs created within window
// after any of the release dates.
func (s *Study) ReleaseBurst(releases []time.Time, window time.Duration) float64 {
	return s.Fraction(func(b LabeledBug) bool {
		for _, r := range releases {
			d := b.Issue.Created.Sub(r)
			if d >= 0 && d <= window {
				return true
			}
		}
		return false
	})
}

// ControllerGuideline reproduces §VII-A (Table VI context): the per-
// controller stability indicators the paper bases its selection
// guideline on.
type ControllerGuideline struct {
	Controller tracker.Controller
	// MissingLogicShare flags immature codebases (FAUCET: 52.5 %).
	MissingLogicShare float64
	// LoadShare flags load-fragile controllers (CORD 30 % vs ONOS 16 %).
	LoadShare float64
	// FailStopShare is the availability risk.
	FailStopShare float64
	// DeterministicShare is RQ1's reproducibility measure.
	DeterministicShare float64
}

// Guidelines computes ControllerGuideline for every controller, sorted
// by ascending combined risk (the paper recommends ONOS).
func (s *Study) Guidelines() ([]ControllerGuideline, error) {
	var out []ControllerGuideline
	for _, c := range tracker.Controllers() {
		sub, err := s.ByController(c)
		if err != nil {
			return nil, fmt.Errorf("study: guidelines: %w", err)
		}
		out = append(out, ControllerGuideline{
			Controller: c,
			MissingLogicShare: sub.Fraction(func(b LabeledBug) bool {
				return b.Label.Cause == taxonomy.CauseMissingLogic
			}),
			LoadShare: sub.Fraction(func(b LabeledBug) bool {
				return b.Label.Cause == taxonomy.CauseLoad
			}),
			FailStopShare: sub.Fraction(func(b LabeledBug) bool {
				return b.Label.Symptom == taxonomy.SymptomFailStop
			}),
			DeterministicShare: sub.Fraction(func(b LabeledBug) bool {
				return b.Label.Type == taxonomy.Deterministic
			}),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		return risk(out[i]) < risk(out[j])
	})
	return out, nil
}

// risk is the combined instability score used only for ordering the
// guideline table: equal-weight sum of the fragility indicators.
func risk(g ControllerGuideline) float64 {
	return g.MissingLogicShare + g.LoadShare + g.FailStopShare
}

// DomainComparison reproduces the related-work table (§IX): symptom
// shares for SDN (measured) against the cloud and BGP bug studies the
// paper cites. Reference values are percentages from the paper's table;
// NA entries are represented as negative values.
type DomainComparison struct {
	Symptom     taxonomy.Symptom
	SDNMeasured float64
	CloudRef    float64
	BGPRef      float64
}

// CompareDomains computes the comparison rows.
func (s *Study) CompareDomains() []DomainComparison {
	refs := map[taxonomy.Symptom][2]float64{
		taxonomy.SymptomFailStop:     {0.59, 0.39},
		taxonomy.SymptomPerformance:  {0.14, -1},
		taxonomy.SymptomErrorMessage: {-1, -1},
		taxonomy.SymptomByzantine:    {0.25, 0.38},
	}
	var out []DomainComparison
	for _, sym := range taxonomy.Symptoms() {
		out = append(out, DomainComparison{
			Symptom: sym,
			SDNMeasured: s.Fraction(func(b LabeledBug) bool {
				return b.Label.Symptom == sym
			}),
			CloudRef: refs[sym][0],
			BGPRef:   refs[sym][1],
		})
	}
	return out
}
