package study

import (
	"math"
	"testing"
	"time"

	"sdnbugs/internal/corpus"
	"sdnbugs/internal/taxonomy"
	"sdnbugs/internal/tracker"
)

// manualStudy builds the 150-bug manual-analysis study from the
// generated corpus, as the paper's protocol does.
func manualStudy(t *testing.T) *Study {
	t.Helper()
	corp, err := corpus.Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	issues, labels := corp.ManualSubset()
	bugs := make([]LabeledBug, len(issues))
	for i := range issues {
		bugs[i] = LabeledBug{Issue: issues[i], Label: labels[i]}
	}
	s, err := New(bugs)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// fullStudy builds the full 795-bug study.
func fullStudy(t *testing.T) *Study {
	t.Helper()
	corp, err := corpus.Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	bugs := make([]LabeledBug, len(corp.Issues))
	for i, iss := range corp.Issues {
		bugs[i] = LabeledBug{Issue: iss, Label: corp.Labels[iss.ID]}
	}
	s, err := New(bugs)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewRejectsBadInput(t *testing.T) {
	if _, err := New(nil); err != ErrNoBugs {
		t.Errorf("want ErrNoBugs, got %v", err)
	}
	bad := LabeledBug{Label: taxonomy.Label{Symptom: taxonomy.SymptomByzantine}}
	if _, err := New([]LabeledBug{bad}); err == nil {
		t.Error("want validation error for byzantine without mode")
	}
}

func TestDistribution(t *testing.T) {
	s := fullStudy(t)
	dist := s.Distribution(taxonomy.DimTrigger)
	var sum float64
	for _, sh := range dist {
		sum += sh.Fraction
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("trigger distribution sums to %v", sum)
	}
	// §V-A: configuration is the top trigger at ≈38.8 %.
	var config Share
	for _, sh := range dist {
		if sh.Category == taxonomy.TriggerConfiguration.String() {
			config = sh
		}
	}
	if math.Abs(config.Fraction-0.388) > 0.05 {
		t.Errorf("configuration trigger = %.3f, want ≈ 0.388", config.Fraction)
	}
}

func TestDeterminismByController(t *testing.T) {
	s := fullStudy(t)
	det := s.DeterminismByController()
	// §III: FAUCET 96 %, ONOS 94 %, CORD 94 %.
	for ctl, want := range map[tracker.Controller]float64{
		tracker.FAUCET: 0.96, tracker.ONOS: 0.94, tracker.CORD: 0.94,
	} {
		if math.Abs(det[ctl]-want) > 0.05 {
			t.Errorf("%s deterministic = %.3f, want ≈ %.2f", ctl, det[ctl], want)
		}
	}
}

func TestByzantineBreakdown(t *testing.T) {
	s := fullStudy(t)
	bd := s.ByzantineBreakdown()
	// §IV: gray 52.17 %, stalling 20.65 %, incorrect 27.18 %.
	wants := map[taxonomy.ByzantineMode]float64{
		taxonomy.GrayFailure:       0.5217,
		taxonomy.Stalling:          0.2065,
		taxonomy.IncorrectBehavior: 0.2718,
	}
	for mode, want := range wants {
		if math.Abs(bd[mode]-want) > 0.03 {
			t.Errorf("%v = %.3f, want ≈ %.3f", mode, bd[mode], want)
		}
	}
}

func TestCauseBySymptomFigure2(t *testing.T) {
	// The per-symptom cause structure involves small conditional
	// subsets (ONOS has only ~7 performance bugs), so this test scales
	// the specs up to where the law of large numbers applies.
	var bugs []LabeledBug
	for ctl, spec := range corpus.DefaultSpecs() {
		spec.TotalBugs = 2000
		spec.ManualCount = 0
		part, err := corpus.GenerateController(spec, 42+int64(ctl))
		if err != nil {
			t.Fatal(err)
		}
		for _, iss := range part.Issues {
			bugs = append(bugs, LabeledBug{Issue: iss, Label: part.Labels[iss.ID]})
		}
	}
	s, err := New(bugs)
	if err != nil {
		t.Fatal(err)
	}
	// FAUCET fail-stop bugs: human + ecosystem dominate (§IV).
	dist, err := s.CauseBySymptom(tracker.FAUCET, taxonomy.SymptomFailStop)
	if err != nil {
		t.Fatal(err)
	}
	var humanEco float64
	for _, sh := range dist {
		if sh.Category == taxonomy.CauseHumanMisconfig.String() ||
			sh.Category == taxonomy.CauseEcosystem.String() {
			humanEco += sh.Fraction
		}
	}
	if humanEco < 0.65 {
		t.Errorf("FAUCET fail-stop human+ecosystem = %.3f, want > 0.65", humanEco)
	}
	// Performance root causes differ per controller (§IV): FAUCET →
	// ecosystem, ONOS → concurrency, CORD → memory.
	wantTop := map[tracker.Controller]taxonomy.RootCause{
		tracker.FAUCET: taxonomy.CauseEcosystem,
		tracker.ONOS:   taxonomy.CauseConcurrency,
		tracker.CORD:   taxonomy.CauseMemory,
	}
	for ctl, want := range wantTop {
		dist, err := s.CauseBySymptom(ctl, taxonomy.SymptomPerformance)
		if err != nil {
			t.Fatal(err)
		}
		top := dist[0]
		for _, sh := range dist {
			if sh.Fraction > top.Fraction {
				top = sh
			}
		}
		if top.Category != want.String() {
			t.Errorf("%s performance top cause = %s, want %s", ctl, top.Category, want)
		}
	}
}

func TestConfigSubcategoriesTable3(t *testing.T) {
	s := fullStudy(t)
	// Table III per controller (±8 pts: conditional draws on a subset).
	wants := map[tracker.Controller]map[taxonomy.ConfigScope]float64{
		tracker.FAUCET: {taxonomy.ConfigController: 0.529, taxonomy.ConfigDataPlane: 0.117, taxonomy.ConfigThirdParty: 0.354},
		tracker.ONOS:   {taxonomy.ConfigController: 0.60, taxonomy.ConfigDataPlane: 0.15, taxonomy.ConfigThirdParty: 0.25},
		tracker.CORD:   {taxonomy.ConfigController: 0.642, taxonomy.ConfigDataPlane: 0.142, taxonomy.ConfigThirdParty: 0.216},
	}
	for ctl, scopes := range wants {
		got, err := s.ConfigSubcategories(ctl)
		if err != nil {
			t.Fatal(err)
		}
		for scope, want := range scopes {
			if math.Abs(got[scope]-want) > 0.08 {
				t.Errorf("%s %v = %.3f, want ≈ %.3f", ctl, scope, got[scope], want)
			}
		}
	}
}

func TestAnalyzeFixes(t *testing.T) {
	s := fullStudy(t)
	fa, err := s.AnalyzeFixes()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fa.ConfigBugsFixedByConfig-0.25) > 0.06 {
		t.Errorf("config-fixed-by-config = %.3f, want ≈ 0.25", fa.ConfigBugsFixedByConfig)
	}
	if math.Abs(fa.ExternalCompatibilityFixes-0.414) > 0.07 {
		t.Errorf("external compatibility fixes = %.3f, want ≈ 0.414", fa.ExternalCompatibilityFixes)
	}
	if fa.NetworkEventAddLogic < 0.5 {
		t.Errorf("network-event add-logic = %.3f, want > 0.5", fa.NetworkEventAddLogic)
	}
}

func TestResolutionCDFFigure7(t *testing.T) {
	s := fullStudy(t)
	// ONOS has the longer configuration tail than CORD (Figure 7).
	onos, err := s.ResolutionCDF(tracker.ONOS, taxonomy.TriggerConfiguration)
	if err != nil {
		t.Fatal(err)
	}
	cord, err := s.ResolutionCDF(tracker.CORD, taxonomy.TriggerConfiguration)
	if err != nil {
		t.Fatal(err)
	}
	if !(onos.Quantile(0.9) > cord.Quantile(0.9)) {
		t.Errorf("ONOS config P90 %.1f should exceed CORD %.1f",
			onos.Quantile(0.9), cord.Quantile(0.9))
	}
	// CORD's reboot tail exceeds ONOS's (specialized optical code).
	onosR, err := s.ResolutionCDF(tracker.ONOS, taxonomy.TriggerHardwareReboot)
	if err != nil {
		t.Fatal(err)
	}
	cordR, err := s.ResolutionCDF(tracker.CORD, taxonomy.TriggerHardwareReboot)
	if err != nil {
		t.Fatal(err)
	}
	if !(cordR.Quantile(0.9) > onosR.Quantile(0.9)) {
		t.Errorf("CORD reboot P90 %.1f should exceed ONOS %.1f",
			cordR.Quantile(0.9), onosR.Quantile(0.9))
	}
	// FAUCET has no resolution data at all (GitHub, §VIII).
	if _, err := s.ResolutionCDF(tracker.FAUCET, taxonomy.TriggerConfiguration); err == nil {
		t.Error("FAUCET resolution CDF should be unavailable")
	}
}

func TestReleaseBurst(t *testing.T) {
	s := fullStudy(t)
	var releases []time.Time
	for _, spec := range corpus.DefaultSpecs() {
		releases = append(releases, spec.Releases...)
	}
	burst := s.ReleaseBurst(releases, 45*24*time.Hour)
	if burst < 0.5 {
		t.Errorf("release-burst share = %.3f, want > 0.5 (bugs cluster at releases)", burst)
	}
}

func TestGuidelines(t *testing.T) {
	s := fullStudy(t)
	gs, err := s.Guidelines()
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 3 {
		t.Fatalf("got %d guidelines", len(gs))
	}
	// §VII-A recommends ONOS as most stable: lowest combined risk.
	if gs[0].Controller != tracker.ONOS {
		t.Errorf("most stable = %s, paper recommends ONOS", gs[0].Controller)
	}
	byCtl := map[tracker.Controller]ControllerGuideline{}
	for _, g := range gs {
		byCtl[g.Controller] = g
	}
	if !(byCtl[tracker.FAUCET].MissingLogicShare > byCtl[tracker.ONOS].MissingLogicShare) {
		t.Error("FAUCET must have the highest missing-logic share")
	}
	if !(byCtl[tracker.CORD].LoadShare > byCtl[tracker.ONOS].LoadShare) {
		t.Error("CORD must be more load-prone than ONOS")
	}
}

func TestCompareDomains(t *testing.T) {
	s := fullStudy(t)
	rows := s.CompareDomains()
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		switch r.Symptom {
		case taxonomy.SymptomFailStop:
			// SDN 20 % vs cloud 59 % vs BGP 39 %.
			if math.Abs(r.SDNMeasured-0.20) > 0.05 || r.CloudRef != 0.59 || r.BGPRef != 0.39 {
				t.Errorf("fail-stop row wrong: %+v", r)
			}
		case taxonomy.SymptomByzantine:
			if r.SDNMeasured < r.CloudRef {
				t.Error("SDN byzantine share must exceed cloud's (61 % vs 25 %)")
			}
		case taxonomy.SymptomErrorMessage:
			if r.CloudRef >= 0 || r.BGPRef >= 0 {
				t.Error("error-message refs must be NA (negative)")
			}
		}
	}
}

func TestFilterAndByController(t *testing.T) {
	s := fullStudy(t)
	onos, err := s.ByController(tracker.ONOS)
	if err != nil {
		t.Fatal(err)
	}
	if onos.Len() != 186 {
		t.Errorf("ONOS bugs = %d, want 186", onos.Len())
	}
	if _, err := s.Filter(func(LabeledBug) bool { return false }); err != ErrNoBugs {
		t.Errorf("want ErrNoBugs for empty filter, got %v", err)
	}
}

func TestCorrelationFigure12(t *testing.T) {
	s := fullStudy(t)
	pairs := s.CategoryCorrelations()
	if len(pairs) == 0 {
		t.Fatal("no category pairs")
	}
	for _, p := range pairs {
		if math.Abs(p.Phi) > 1+1e-9 {
			t.Fatalf("phi out of range: %+v", p)
		}
	}
	cdf, err := s.CorrelationCDF()
	if err != nil {
		t.Fatal(err)
	}
	if cdf.Min() < 0 || cdf.Max() > 1 {
		t.Errorf("correlation CDF range [%v, %v]", cdf.Min(), cdf.Max())
	}
	// Most pairs weakly correlated, a small strong tail (Figure 12).
	strong := s.StrongFraction(0.4)
	if strong <= 0 || strong > 0.2 {
		t.Errorf("strong-pair fraction = %.4f, want small but non-zero", strong)
	}
	// §VII-B: third-party calls correlate with add-compatibility fixes.
	found := false
	for _, p := range s.StrongPairs(0.2) {
		if (p.TagA == taxonomy.TriggerExternalCall.String() && p.TagB == taxonomy.FixAddCompatibility.String()) ||
			(p.TagB == taxonomy.TriggerExternalCall.String() && p.TagA == taxonomy.FixAddCompatibility.String()) {
			found = true
		}
	}
	if !found {
		t.Error("external-call ↔ add-compatibility should be a strong pair")
	}
}

func TestTopicUniquenessFigure14(t *testing.T) {
	s := manualStudy(t)
	scores, err := s.TopicUniquenessAnalysis(TopicConfig{Rank: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) == 0 {
		t.Fatal("no topic scores")
	}
	for _, sc := range scores {
		if sc.Score < 0 || sc.Score > 1+1e-9 {
			t.Errorf("score out of range: %+v", sc)
		}
		if sc.Support < 5 {
			t.Errorf("support below MinSupport: %+v", sc)
		}
	}
	// Results are sorted descending.
	for i := 1; i < len(scores); i++ {
		if scores[i].Score > scores[i-1].Score+1e-9 {
			t.Error("scores not sorted")
			break
		}
	}
}

func TestTopicUniquenessLDA(t *testing.T) {
	s := manualStudy(t)
	scores, err := s.TopicUniquenessAnalysisLDA(TopicConfig{Rank: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) == 0 {
		t.Fatal("no LDA topic scores")
	}
	for _, sc := range scores {
		if sc.Score < 0 || sc.Score > 1+1e-9 {
			t.Errorf("score out of range: %+v", sc)
		}
	}
	for i := 1; i < len(scores); i++ {
		if scores[i].Score > scores[i-1].Score+1e-9 {
			t.Error("LDA scores not sorted")
			break
		}
	}
}

func TestValidateRepeatedErrors(t *testing.T) {
	s := manualStudy(t)
	if _, err := ValidateRepeated(s.Bugs(), PipelineConfig{}, 0); err == nil {
		t.Error("want error for repeats < 1")
	}
}
