package study

import (
	"errors"
	"fmt"
	"sync"

	"sdnbugs/internal/mathx"
	"sdnbugs/internal/ml"
	"sdnbugs/internal/ml/adaboost"
	"sdnbugs/internal/ml/dtree"
	"sdnbugs/internal/ml/pca"
	"sdnbugs/internal/ml/svm"
	"sdnbugs/internal/nlp/tfidf"
	"sdnbugs/internal/nlp/word2vec"
	"sdnbugs/internal/parallel"
	"sdnbugs/internal/taxonomy"
)

// ModelName identifies a classifier family in validation results.
type ModelName string

// Model names compared in §II-C.
const (
	ModelSVM       ModelName = "svm"
	ModelSVMNoNorm ModelName = "svm-no-normalization"
	ModelDTree     ModelName = "decision-tree"
	ModelAdaBoost  ModelName = "adaboost"
	ModelPCASVM    ModelName = "pca+svm"
)

// modelOrder is the canonical comparison order: ties in accuracy are
// broken toward the earlier model, and all reductions over models walk
// this order so results never depend on map iteration.
func modelOrder() []ModelName {
	return []ModelName{ModelSVM, ModelSVMNoNorm, ModelDTree, ModelAdaBoost, ModelPCASVM}
}

// modelSpec describes one grid column: which classifier to construct
// and which feature variant (raw or L2-normalized) it trains on.
type modelSpec struct {
	name       ModelName
	normalized bool
	newClf     func() ml.Classifier
}

// modelSpecs returns fresh constructors for the §II-C comparison, in
// modelOrder. Each grid cell builds its own classifier so cells can
// train concurrently without sharing mutable state.
func modelSpecs(cfg PipelineConfig) []modelSpec {
	newSVM := func() *svm.Multiclass {
		return &svm.Multiclass{Epochs: 80, Lambda: 1e-4, Balanced: true, Seed: cfg.Seed}
	}
	return []modelSpec{
		{ModelSVM, true, func() ml.Classifier { return newSVM() }},
		{ModelSVMNoNorm, false, func() ml.Classifier { return newSVM() }},
		{ModelDTree, false, func() ml.Classifier { return &dtree.Tree{MaxDepth: 10} }},
		{ModelAdaBoost, false, func() ml.Classifier { return &adaboost.Ensemble{Rounds: 40} }},
		{ModelPCASVM, true, func() ml.Classifier {
			return &pca.Reduced{Components: 24, Seed: cfg.Seed, Inner: newSVM()}
		}},
	}
}

// ValidationResult holds per-model test accuracies for one dimension.
type ValidationResult struct {
	Dimension  taxonomy.Dimension
	Accuracies map[ModelName]float64
	// Best is the model with the highest accuracy (earliest in
	// modelOrder on ties).
	Best ModelName
}

// buildFeatures stacks the TF-IDF and Word2Vec blocks for every
// document into one matrix; either block may be nil. scale applies
// unit-L2 row normalization ("normalization" in the paper's sense).
func buildFeatures(vec *tfidf.Vectorizer, w2v *word2vec.Model, docs [][]string, scale bool) (*mathx.Matrix, error) {
	var dim int
	if vec != nil {
		dim += vec.VocabSize()
	}
	if w2v != nil {
		dim += w2v.Dim()
	}
	x := mathx.NewMatrix(len(docs), dim)
	for i, doc := range docs {
		row := x.Row(i)
		off := 0
		if vec != nil {
			v, err := vec.Transform(doc)
			if err != nil {
				return nil, fmt.Errorf("study: tfidf transform: %w", err)
			}
			copy(row[:len(v)], v)
			off = len(v)
		}
		if w2v != nil {
			copy(row[off:], w2v.DocVector(doc))
		}
		if scale {
			mathx.Normalize(row)
		}
	}
	return x, nil
}

// Validator runs the §II-C validation protocol over one fixed labeled
// set, caching everything that is invariant across runs: the tokenized
// corpus and per-dimension label indices (split-independent), fitted
// TF-IDF vocabularies (seed-independent), trained Word2Vec models
// (keyed by their full config, including seed), and whole Validate
// results (keyed by the normalized config). A Validator therefore
// does each distinct piece of work exactly once no matter how many
// repeats, ablation variants, or concurrent experiments ask for it.
//
// All methods are safe for concurrent use; duplicate concurrent
// requests for the same artifact are single-flighted through
// sync.Once entries, so one goroutine computes and the rest wait.
type Validator struct {
	bugs []LabeledBug

	docsOnce sync.Once
	docs     [][]string

	labelsOnce sync.Once
	labels     map[taxonomy.Dimension][]int
	labelsErr  error

	mu   sync.Mutex
	vecs map[int]*vecEntry             // MaxVocab -> fitted TF-IDF
	w2vs map[word2vec.Config]*w2vEntry // full config -> trained model
	runs map[PipelineConfig]*runEntry  // normalized cfg -> results
}

type vecEntry struct {
	once sync.Once
	vec  *tfidf.Vectorizer
	err  error
}

type w2vEntry struct {
	once sync.Once
	m    *word2vec.Model
	err  error
}

type runEntry struct {
	once sync.Once
	res  []ValidationResult
	err  error
}

// NewValidator builds a Validator over bugs. The slice is retained and
// must not be mutated afterwards.
func NewValidator(bugs []LabeledBug) *Validator {
	return &Validator{
		bugs: bugs,
		vecs: map[int]*vecEntry{},
		w2vs: map[word2vec.Config]*w2vEntry{},
		runs: map[PipelineConfig]*runEntry{},
	}
}

func (v *Validator) tokenized() [][]string {
	v.docsOnce.Do(func() { v.docs = tokenizeAll(v.bugs) })
	return v.docs
}

func (v *Validator) labelIndices() (map[taxonomy.Dimension][]int, error) {
	v.labelsOnce.Do(func() {
		labels := make(map[taxonomy.Dimension][]int)
		for _, d := range taxonomy.Dimensions() {
			y := make([]int, len(v.bugs))
			for i, b := range v.bugs {
				idx, err := labelIndex(d, b.Label.Tag(d))
				if err != nil {
					v.labelsErr = fmt.Errorf("study: bug %s: %w", b.Issue.ID, err)
					return
				}
				y[i] = idx
			}
			labels[d] = y
		}
		v.labels = labels
	})
	return v.labels, v.labelsErr
}

// fittedVectorizer returns the TF-IDF vectorizer for maxVocab, fitting
// it on first use. Fitting does not depend on the seed, so every
// repeat and every seed shares one vocabulary.
func (v *Validator) fittedVectorizer(maxVocab int) (*tfidf.Vectorizer, error) {
	v.mu.Lock()
	e, ok := v.vecs[maxVocab]
	if !ok {
		e = &vecEntry{}
		v.vecs[maxVocab] = e
	}
	v.mu.Unlock()
	e.once.Do(func() {
		vec := &tfidf.Vectorizer{MaxVocab: maxVocab, MinDF: 2}
		if err := vec.Fit(v.tokenized()); err != nil {
			e.err = fmt.Errorf("study: fit tfidf: %w", err)
			return
		}
		e.vec = vec
	})
	return e.vec, e.err
}

// trainedW2V returns the Word2Vec model for wcfg, training it on first
// use. The key is the full config, so different seeds (different
// repeats) train distinct models while identical requests — e.g. the
// scaling ablation re-running the E09 protocol — share one.
func (v *Validator) trainedW2V(wcfg word2vec.Config) (*word2vec.Model, error) {
	v.mu.Lock()
	e, ok := v.w2vs[wcfg]
	if !ok {
		e = &w2vEntry{}
		v.w2vs[wcfg] = e
	}
	v.mu.Unlock()
	e.once.Do(func() {
		m, err := word2vec.Train(v.tokenized(), wcfg)
		if err != nil {
			e.err = fmt.Errorf("study: train word2vec: %w", err)
			return
		}
		e.m = m
	})
	return e.m, e.err
}

func (v *Validator) run(key PipelineConfig) *runEntry {
	v.mu.Lock()
	defer v.mu.Unlock()
	e, ok := v.runs[key]
	if !ok {
		e = &runEntry{}
		v.runs[key] = e
	}
	return e
}

// Validate reproduces the paper's §II-C protocol: split the manually
// labeled set 2/3 train, 1/3 test; compare SVM (with and without
// normalization), decision tree, AdaBoost, and PCA+SVM per dimension.
// The paper's result: normalized SVM best, ≈96 % on bug type, ≈86 % on
// symptoms, and no model predicts fixes well.
//
// The (dimension × model) grid trains on a bounded worker pool
// (cfg.Workers); every cell builds its own classifier, writes only its
// own slot, and the reduction walks dimensions and models in canonical
// order, so the result is identical for every worker count.
func (v *Validator) Validate(cfg PipelineConfig) ([]ValidationResult, error) {
	cfg = cfg.withDefaults()
	if len(v.bugs) < 12 {
		return nil, fmt.Errorf("study: need at least 12 labeled bugs, have %d", len(v.bugs))
	}
	key := cfg
	// Workers never changes results, so all settings share one entry.
	key.Workers = 0
	e := v.run(key)
	e.once.Do(func() { e.res, e.err = v.validate(cfg) })
	if e.err != nil {
		return nil, e.err
	}
	return cloneResults(e.res), nil
}

func (v *Validator) validate(cfg PipelineConfig) ([]ValidationResult, error) {
	docs := v.tokenized()
	labels, err := v.labelIndices()
	if err != nil {
		return nil, err
	}

	var vec *tfidf.Vectorizer
	if !cfg.DisableTFIDF {
		if vec, err = v.fittedVectorizer(cfg.MaxVocab); err != nil {
			return nil, err
		}
	}
	var w2v *word2vec.Model
	if !cfg.DisableW2V {
		wcfg := word2vec.Config{Dim: cfg.W2VDim, Epochs: cfg.W2VEpochs, Seed: cfg.Seed}
		if w2v, err = v.trainedW2V(wcfg); err != nil {
			return nil, err
		}
	}
	if vec == nil && w2v == nil {
		return nil, errors.New("study: pipeline needs at least one feature block")
	}
	xRaw, err := buildFeatures(vec, w2v, docs, false)
	if err != nil {
		return nil, err
	}
	// L2-normalized copy for the "with normalization" variants.
	xNorm := xRaw.Clone()
	for i := 0; i < xNorm.Rows(); i++ {
		mathx.Normalize(xNorm.Row(i))
	}

	dims := taxonomy.Dimensions()
	specs := modelSpecs(cfg)

	type dimSplit struct {
		train, test *ml.Dataset
		trN, teN    *ml.Dataset
	}
	splits := make([]dimSplit, len(dims))
	for di, d := range dims {
		dsRaw, err := ml.NewDataset(xRaw, labels[d])
		if err != nil {
			return nil, err
		}
		dsNorm, err := ml.NewDataset(xNorm, labels[d])
		if err != nil {
			return nil, err
		}
		// The same seed gives both variants the identical split.
		train, test, err := ml.TrainTestSplit(dsRaw, 2.0/3.0, cfg.Seed+int64(d))
		if err != nil {
			return nil, err
		}
		trN, teN, err := ml.TrainTestSplit(dsNorm, 2.0/3.0, cfg.Seed+int64(d))
		if err != nil {
			return nil, err
		}
		splits[di] = dimSplit{train, test, trN, teN}
	}

	// The grid: every (dimension, model) cell is independent — its own
	// classifier, its own output slot — so cells run concurrently and
	// the reduction below is order-fixed regardless of worker count.
	accs := make([][]float64, len(dims))
	for i := range accs {
		accs[i] = make([]float64, len(specs))
	}
	err = parallel.MapErr(cfg.Workers, len(dims)*len(specs), func(c int) error {
		di, mi := c/len(specs), c%len(specs)
		spec := specs[mi]
		trainSet, testSet := splits[di].train, splits[di].test
		if spec.normalized {
			trainSet, testSet = splits[di].trN, splits[di].teN
		}
		acc, err := ml.EvaluateSplit(spec.newClf(), trainSet, testSet)
		if err != nil {
			return fmt.Errorf("study: %v/%s: %w", dims[di], spec.name, err)
		}
		accs[di][mi] = acc
		return nil
	})
	if err != nil {
		return nil, err
	}

	results := make([]ValidationResult, len(dims))
	for di, d := range dims {
		res := ValidationResult{Dimension: d, Accuracies: make(map[ModelName]float64, len(specs))}
		for mi, spec := range specs {
			acc := accs[di][mi]
			res.Accuracies[spec.name] = acc
			if res.Best == "" || acc > res.Accuracies[res.Best] {
				res.Best = spec.name
			}
		}
		results[di] = res
	}
	return results, nil
}

// ValidateRepeated runs Validate across `repeats` different splits and
// returns the per-dimension, per-model mean accuracies. The paper's
// single-split numbers (96 % type, 86 % symptom) sit inside the band
// this estimates more stably.
//
// Repeats fan out on the same bounded pool; each repeat's seed is
// derived from its index alone (cfg.Seed + r*101), and means are
// accumulated in repeat order per accumulator, so the output is
// bit-identical for every worker count.
func (v *Validator) ValidateRepeated(cfg PipelineConfig, repeats int) ([]ValidationResult, error) {
	if repeats < 1 {
		return nil, fmt.Errorf("study: repeats must be >= 1, got %d", repeats)
	}
	per := make([][]ValidationResult, repeats)
	err := parallel.MapErr(cfg.Workers, repeats, func(r int) error {
		runCfg := cfg
		runCfg.Seed = cfg.Seed + int64(r)*101
		res, err := v.Validate(runCfg)
		if err != nil {
			return err
		}
		per[r] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]ValidationResult, 0, len(taxonomy.Dimensions()))
	for di, d := range taxonomy.Dimensions() {
		res := ValidationResult{Dimension: d, Accuracies: map[ModelName]float64{}}
		for _, m := range modelOrder() {
			var s float64
			for r := 0; r < repeats; r++ {
				s += per[r][di].Accuracies[m]
			}
			res.Accuracies[m] = s / float64(repeats)
			if res.Best == "" || res.Accuracies[m] > res.Accuracies[res.Best] {
				res.Best = m
			}
		}
		out = append(out, res)
	}
	return out, nil
}

func cloneResults(in []ValidationResult) []ValidationResult {
	out := make([]ValidationResult, len(in))
	for i, r := range in {
		m := make(map[ModelName]float64, len(r.Accuracies))
		for k, a := range r.Accuracies {
			m[k] = a
		}
		out[i] = ValidationResult{Dimension: r.Dimension, Accuracies: m, Best: r.Best}
	}
	return out
}

// Validate is the single-shot form: it builds a throwaway Validator.
// Callers running many configurations over one labeled set should hold
// a Validator so repeated work is shared.
func Validate(bugs []LabeledBug, cfg PipelineConfig) ([]ValidationResult, error) {
	return NewValidator(bugs).Validate(cfg)
}

// ValidateRepeated is the single-shot form of
// (*Validator).ValidateRepeated; see Validate.
func ValidateRepeated(bugs []LabeledBug, cfg PipelineConfig, repeats int) ([]ValidationResult, error) {
	return NewValidator(bugs).ValidateRepeated(cfg, repeats)
}
