package study

import (
	"fmt"
	"sort"

	"sdnbugs/internal/nlp/lda"
	"sdnbugs/internal/nlp/nmf"
	"sdnbugs/internal/nlp/tfidf"
	"sdnbugs/internal/taxonomy"
)

// TopicUniqueness is one category's topic-uniqueness score (Figure 14):
// how exclusively the category's bugs own their dominant NMF topics.
// A score near 1 means the category's reports read unlike any other
// category's; near 0 means its topics are shared.
type TopicUniqueness struct {
	Dimension taxonomy.Dimension
	Tag       string
	Score     float64
	Support   int
}

// TopicConfig controls the Figure 14 analysis.
type TopicConfig struct {
	// Rank is the NMF topic count (default 12).
	Rank int
	// Seed drives NMF initialization.
	Seed int64
	// MinSupport skips categories with fewer bugs (default 5).
	MinSupport int
	// MaxVocab caps the TF-IDF vocabulary (default 400).
	MaxVocab int
}

func (c TopicConfig) withDefaults() TopicConfig {
	if c.Rank <= 0 {
		c.Rank = 12
	}
	if c.MinSupport <= 0 {
		c.MinSupport = 5
	}
	if c.MaxVocab <= 0 {
		c.MaxVocab = 400
	}
	return c
}

// TopicUniquenessAnalysis reproduces Figure 14: NMF topics over the
// bugs' TF-IDF matrix, a dominant topic per bug, and per category the
// exclusivity-weighted share of its dominant topics. Results are
// sorted by descending score.
func (s *Study) TopicUniquenessAnalysis(cfg TopicConfig) ([]TopicUniqueness, error) {
	cfg = cfg.withDefaults()
	docs := tokenizeAll(s.bugs)
	vec := &tfidf.Vectorizer{MaxVocab: cfg.MaxVocab, MinDF: 2}
	x, err := vec.FitTransform(docs)
	if err != nil {
		return nil, fmt.Errorf("study: topics tfidf: %w", err)
	}
	rank := cfg.Rank
	if rank > vec.VocabSize() {
		rank = vec.VocabSize()
	}
	model, err := nmf.Factorize(x, nmf.Config{Rank: rank, Seed: cfg.Seed, MaxIter: 150})
	if err != nil {
		return nil, fmt.Errorf("study: nmf: %w", err)
	}
	dom := make([]int, len(s.bugs))
	topicTotal := make([]int, rank)
	for i := range s.bugs {
		t, err := model.DominantTopic(i)
		if err != nil {
			return nil, err
		}
		dom[i] = t
		topicTotal[t]++
	}

	var out []TopicUniqueness
	for _, d := range taxonomy.Dimensions() {
		for _, tag := range d.Categories() {
			// Per-topic counts for this category.
			counts := make([]int, rank)
			support := 0
			for i, b := range s.bugs {
				if b.Label.Tag(d) == tag {
					counts[dom[i]]++
					support++
				}
			}
			if support < cfg.MinSupport {
				continue
			}
			// Score = Σ_t P(t|c) · exclusivity(t,c), where exclusivity
			// is the category's share of all bugs on that topic.
			var score float64
			for t := 0; t < rank; t++ {
				if counts[t] == 0 {
					continue
				}
				pTC := float64(counts[t]) / float64(support)
				excl := float64(counts[t]) / float64(topicTotal[t])
				score += pTC * excl
			}
			out = append(out, TopicUniqueness{
				Dimension: d, Tag: tag, Score: score, Support: support,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Tag < out[j].Tag
	})
	return out, nil
}

// TopicUniquenessAnalysisLDA is the Figure 14 analysis computed with
// LDA topics instead of NMF — the alternative the paper considered and
// rejected (§II-C). Scores use the same exclusivity metric so the two
// models are directly comparable.
func (s *Study) TopicUniquenessAnalysisLDA(cfg TopicConfig) ([]TopicUniqueness, error) {
	cfg = cfg.withDefaults()
	docs := tokenizeAll(s.bugs)
	model, err := lda.Fit(docs, lda.Config{Topics: cfg.Rank, Seed: cfg.Seed, Iterations: 120})
	if err != nil {
		return nil, fmt.Errorf("study: lda: %w", err)
	}
	dom := make([]int, len(s.bugs))
	topicTotal := make([]int, cfg.Rank)
	for i := range s.bugs {
		t, err := model.DominantTopic(i)
		if err != nil {
			return nil, err
		}
		dom[i] = t
		topicTotal[t]++
	}
	return scoreUniqueness(s.bugs, dom, topicTotal, cfg.MinSupport), nil
}

// scoreUniqueness computes the exclusivity-weighted uniqueness of every
// category given per-document dominant topics.
func scoreUniqueness(bugs []LabeledBug, dom []int, topicTotal []int, minSupport int) []TopicUniqueness {
	var out []TopicUniqueness
	for _, d := range taxonomy.Dimensions() {
		for _, tag := range d.Categories() {
			counts := make([]int, len(topicTotal))
			support := 0
			for i, b := range bugs {
				if b.Label.Tag(d) == tag {
					counts[dom[i]]++
					support++
				}
			}
			if support < minSupport {
				continue
			}
			var score float64
			for t := range topicTotal {
				if counts[t] == 0 {
					continue
				}
				pTC := float64(counts[t]) / float64(support)
				excl := float64(counts[t]) / float64(topicTotal[t])
				score += pTC * excl
			}
			out = append(out, TopicUniqueness{Dimension: d, Tag: tag, Score: score, Support: support})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Tag < out[j].Tag
	})
	return out
}
