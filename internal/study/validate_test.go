package study

import (
	"reflect"
	"testing"
)

// fastCfg keeps validation tests quick: a smaller vocabulary and fewer
// Word2Vec epochs than the defaults, but the full five-model grid.
func fastCfg(workers int) PipelineConfig {
	return PipelineConfig{Seed: 1, MaxVocab: 150, W2VDim: 16, W2VEpochs: 2, Workers: workers}
}

// TestValidatorWorkersDeterministic is the tentpole's determinism
// contract: the parallel validation grid must return bit-identical
// results for every worker count. Separate Validators per setting so
// the run cache cannot mask a real divergence.
func TestValidatorWorkersDeterministic(t *testing.T) {
	bugs := manualStudy(t).Bugs()
	var base []ValidationResult
	for _, workers := range []int{1, 4} {
		v := NewValidator(bugs)
		res, err := v.ValidateRepeated(fastCfg(workers), 2)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if base == nil {
			base = res
			continue
		}
		if !reflect.DeepEqual(base, res) {
			t.Fatalf("workers=%d results differ from workers=1:\n%+v\nvs\n%+v", workers, res, base)
		}
	}
}

// TestValidatorMatchesSingleShot pins the refactor: a cached Validator
// must agree exactly with the package-level single-shot entry points.
func TestValidatorMatchesSingleShot(t *testing.T) {
	bugs := manualStudy(t).Bugs()
	cfg := fastCfg(1)
	want, err := Validate(bugs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	v := NewValidator(bugs)
	// Prime the caches with a repeated run first; repeat 0 shares
	// cfg.Seed, so the subsequent Validate must be a cache hit that
	// still equals the fresh computation.
	if _, err := v.ValidateRepeated(cfg, 2); err != nil {
		t.Fatal(err)
	}
	got, err := v.Validate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("validator result differs from single-shot:\n%+v\nvs\n%+v", got, want)
	}
}

// TestValidatorCacheIsolation checks callers own the returned results:
// mutating one call's maps must not corrupt later calls.
func TestValidatorCacheIsolation(t *testing.T) {
	bugs := manualStudy(t).Bugs()
	v := NewValidator(bugs)
	cfg := fastCfg(1)
	first, err := v.Validate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := cloneResults(first)
	for i := range first {
		first[i].Accuracies[ModelSVM] = -1
		first[i].Best = "corrupted"
	}
	second, err := v.Validate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, second) {
		t.Fatalf("mutation leaked into validator cache:\n%+v\nvs\n%+v", second, want)
	}
}

// TestValidatorBestUsesCanonicalOrder pins the tie-break: on equal
// accuracies the earlier model in modelOrder wins, never map order.
func TestValidatorBestUsesCanonicalOrder(t *testing.T) {
	order := modelOrder()
	specs := modelSpecs(PipelineConfig{})
	if len(order) != len(specs) {
		t.Fatalf("modelOrder has %d entries, modelSpecs %d", len(order), len(specs))
	}
	for i, m := range order {
		if specs[i].name != m {
			t.Fatalf("spec %d is %s, want %s", i, specs[i].name, m)
		}
	}
}

// TestPipelineWorkersDeterministic covers the pipeline's parallel
// stages (per-dimension training, batch prediction): the fitted
// pipeline must predict identically for every worker count.
func TestPipelineWorkersDeterministic(t *testing.T) {
	bugs := manualStudy(t).Bugs()
	var base []string
	for _, workers := range []int{1, 4} {
		p := NewPipeline(PipelineConfig{Seed: 1, MaxVocab: 150, W2VDim: 16, W2VEpochs: 2, Workers: workers})
		if err := p.Fit(bugs); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var labels []string
		for _, b := range bugs[:30] {
			l, err := p.Predict(b.Issue)
			if err != nil {
				t.Fatalf("workers=%d predict %s: %v", workers, b.Issue.ID, err)
			}
			labels = append(labels, l.Type.String()+"/"+l.Symptom.String()+"/"+l.Trigger.String())
		}
		if base == nil {
			base = labels
			continue
		}
		if !reflect.DeepEqual(base, labels) {
			t.Fatalf("workers=%d predictions differ from workers=1", workers)
		}
	}
}
