package jirasim

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"

	"sdnbugs/internal/tracker"
)

// Client mines issues from a JIRA-like server.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// PageSize is the maxResults per search page (default 50).
	PageSize int
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// SearchOptions filter a mining run.
type SearchOptions struct {
	// Project restricts to one JIRA project (empty = all).
	Project string
	// Severity keeps issues at least this severe (empty = all).
	Severity string
	// Status restricts to a lifecycle state (empty = all).
	Status string
}

// FetchAll pages through /rest/api/2/search until every matching issue
// has been retrieved.
func (c *Client) FetchAll(ctx context.Context, opts SearchOptions) ([]IssueResult, error) {
	pageSize := c.PageSize
	if pageSize <= 0 {
		pageSize = 50
	}
	var out []IssueResult
	startAt := 0
	for {
		page, total, err := c.fetchPage(ctx, opts, startAt, pageSize)
		if err != nil {
			return nil, err
		}
		out = append(out, page...)
		startAt += len(page)
		if startAt >= total || len(page) == 0 {
			break
		}
	}
	return out, nil
}

// IssueResult is one mined issue in the neutral model, plus the raw key.
type IssueResult struct {
	Key   string
	Issue tracker.Issue
}

func (c *Client) fetchPage(ctx context.Context, opts SearchOptions, startAt, max int) ([]IssueResult, int, error) {
	u, err := url.Parse(c.BaseURL + "/rest/api/2/search")
	if err != nil {
		return nil, 0, fmt.Errorf("jirasim: bad base URL: %w", err)
	}
	q := u.Query()
	if opts.Project != "" {
		q.Set("project", opts.Project)
	}
	if opts.Severity != "" {
		q.Set("severity", opts.Severity)
	}
	if opts.Status != "" {
		q.Set("status", opts.Status)
	}
	q.Set("startAt", strconv.Itoa(startAt))
	q.Set("maxResults", strconv.Itoa(max))
	u.RawQuery = q.Encode()

	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
	if err != nil {
		return nil, 0, fmt.Errorf("jirasim: build request: %w", err)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, 0, fmt.Errorf("jirasim: search: %w", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, fmt.Errorf("jirasim: search returned %s", resp.Status)
	}
	var sr searchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, 0, fmt.Errorf("jirasim: decode search response: %w", err)
	}
	out := make([]IssueResult, 0, len(sr.Issues))
	for _, wi := range sr.Issues {
		iss, err := fromWire(wi)
		if err != nil {
			return nil, 0, err
		}
		out = append(out, IssueResult{Key: wi.Key, Issue: iss})
	}
	return out, sr.Total, nil
}

// GetIssue fetches a single issue by key.
func (c *Client) GetIssue(ctx context.Context, key string) (tracker.Issue, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+"/rest/api/2/issue/"+url.PathEscape(key), nil)
	if err != nil {
		return tracker.Issue{}, fmt.Errorf("jirasim: build request: %w", err)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return tracker.Issue{}, fmt.Errorf("jirasim: get issue: %w", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode == http.StatusNotFound {
		return tracker.Issue{}, fmt.Errorf("jirasim: issue %s: %w", key, tracker.ErrNotFound)
	}
	if resp.StatusCode != http.StatusOK {
		return tracker.Issue{}, fmt.Errorf("jirasim: get issue returned %s", resp.Status)
	}
	var wi wireIssue
	if err := json.NewDecoder(resp.Body).Decode(&wi); err != nil {
		return tracker.Issue{}, fmt.Errorf("jirasim: decode issue: %w", err)
	}
	return fromWire(wi)
}
