package jirasim

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"sdnbugs/internal/resilience"
	"sdnbugs/internal/tracker"
)

// Client hardening defaults.
const (
	// DefaultUserAgent identifies the miner; real trackers (and the
	// chaos-wrapped simulators) throttle anonymous clients harder.
	DefaultUserAgent = "sdnbugs-miner/1.0"
	// DefaultMaxBodyBytes caps how much of a response body is read.
	DefaultMaxBodyBytes = 10 << 20
	// DefaultMaxPages bounds a paging loop against servers whose total
	// keeps growing (or lying).
	DefaultMaxPages = 1000
)

// DefaultClient is used when Client.HTTPClient is nil: a retrying
// transport with exponential backoff, full jitter, and Retry-After
// honoring, so transient tracker failures never surface to callers.
var DefaultClient = &http.Client{Transport: resilience.NewTransport(nil, resilience.Policy{
	MaxAttempts:       4,
	BaseDelay:         50 * time.Millisecond,
	MaxDelay:          2 * time.Second,
	PerAttemptTimeout: 30 * time.Second,
}, nil)}

// Client mines issues from a JIRA-like server.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to DefaultClient (a resilient, retrying
	// client — pass a plain http.Client to opt out).
	HTTPClient *http.Client
	// PageSize is the maxResults per search page (default 50).
	PageSize int
	// UserAgent overrides DefaultUserAgent.
	UserAgent string
	// MaxBodyBytes caps response bodies (default DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// MaxPages caps a single FetchAll/Resume paging loop
	// (default DefaultMaxPages).
	MaxPages int
	// OnPage, when set, is called after every completed page with the
	// advanced cursor, before the loop decides whether to continue — so
	// a checkpointing caller (the durable miner) sees the final page
	// too. Returning an error aborts the run; the cursor keeps every
	// page fetched so far.
	OnPage func(*Cursor) error
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return DefaultClient
}

func (c *Client) userAgent() string {
	if c.UserAgent != "" {
		return c.UserAgent
	}
	return DefaultUserAgent
}

func (c *Client) maxBody() int64 {
	if c.MaxBodyBytes > 0 {
		return c.MaxBodyBytes
	}
	return DefaultMaxBodyBytes
}

// do sends a GET for u with the standard mining headers.
func (c *Client) do(ctx context.Context, u string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, fmt.Errorf("jirasim: build request: %w", err)
	}
	req.Header.Set("Accept", "application/json")
	req.Header.Set("User-Agent", c.userAgent())
	return c.http().Do(req)
}

// drain empties a response body (bounded) so the underlying connection
// can be reused even on non-200 responses.
func drain(body io.Reader) {
	_, _ = io.Copy(io.Discard, io.LimitReader(body, 4096))
}

// SearchOptions filter a mining run.
type SearchOptions struct {
	// Project restricts to one JIRA project (empty = all).
	Project string
	// Severity keeps issues at least this severe (empty = all).
	Severity string
	// Status restricts to a lifecycle state (empty = all).
	Status string
}

// Cursor is a resumable position in a paged search. After a failed
// Resume the cursor holds every fully-fetched page, so retrying picks
// up from the last completed page instead of page zero.
type Cursor struct {
	// StartAt is the next startAt offset to request.
	StartAt int
	// Results accumulates the issues fetched so far.
	Results []IssueResult
}

// FetchAll pages through /rest/api/2/search until every matching issue
// has been retrieved.
func (c *Client) FetchAll(ctx context.Context, opts SearchOptions) ([]IssueResult, error) {
	var cur Cursor
	if err := c.Resume(ctx, opts, &cur); err != nil {
		return nil, err
	}
	return cur.Results, nil
}

// Resume continues a paged search from cur, appending each completed
// page before advancing, so the cursor stays valid if a page fails
// mid-run. Paging is bounded by MaxPages, and a server that reports
// more results than it serves (an inconsistent total) is detected
// rather than looped on.
func (c *Client) Resume(ctx context.Context, opts SearchOptions, cur *Cursor) error {
	pageSize := c.PageSize
	if pageSize <= 0 {
		pageSize = 50
	}
	maxPages := c.MaxPages
	if maxPages <= 0 {
		maxPages = DefaultMaxPages
	}
	for pages := 0; ; pages++ {
		if pages >= maxPages {
			return fmt.Errorf("jirasim: search exceeded %d pages (startAt=%d) — refusing to page forever", maxPages, cur.StartAt)
		}
		page, total, err := c.fetchPage(ctx, opts, cur.StartAt, pageSize)
		if err != nil {
			return err
		}
		cur.Results = append(cur.Results, page...)
		cur.StartAt += len(page)
		if c.OnPage != nil {
			if err := c.OnPage(cur); err != nil {
				return fmt.Errorf("jirasim: page checkpoint: %w", err)
			}
		}
		if cur.StartAt >= total {
			return nil
		}
		if len(page) == 0 {
			return fmt.Errorf("jirasim: no paging progress at startAt=%d with total=%d (inconsistent server total)", cur.StartAt, total)
		}
	}
}

// IssueResult is one mined issue in the neutral model, plus the raw key.
type IssueResult struct {
	Key   string
	Issue tracker.Issue
}

func (c *Client) fetchPage(ctx context.Context, opts SearchOptions, startAt, max int) ([]IssueResult, int, error) {
	u, err := url.Parse(c.BaseURL + "/rest/api/2/search")
	if err != nil {
		return nil, 0, fmt.Errorf("jirasim: bad base URL: %w", err)
	}
	q := u.Query()
	if opts.Project != "" {
		q.Set("project", opts.Project)
	}
	if opts.Severity != "" {
		q.Set("severity", opts.Severity)
	}
	if opts.Status != "" {
		q.Set("status", opts.Status)
	}
	q.Set("startAt", strconv.Itoa(startAt))
	q.Set("maxResults", strconv.Itoa(max))
	u.RawQuery = q.Encode()

	resp, err := c.do(ctx, u.String())
	if err != nil {
		return nil, 0, fmt.Errorf("jirasim: search: %w", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		drain(resp.Body)
		return nil, 0, fmt.Errorf("jirasim: search returned %s", resp.Status)
	}
	var sr searchResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, c.maxBody())).Decode(&sr); err != nil {
		return nil, 0, fmt.Errorf("jirasim: decode search response: %w", err)
	}
	out := make([]IssueResult, 0, len(sr.Issues))
	for _, wi := range sr.Issues {
		iss, err := fromWire(wi)
		if err != nil {
			return nil, 0, err
		}
		out = append(out, IssueResult{Key: wi.Key, Issue: iss})
	}
	return out, sr.Total, nil
}

// GetIssue fetches a single issue by key.
func (c *Client) GetIssue(ctx context.Context, key string) (tracker.Issue, error) {
	resp, err := c.do(ctx, c.BaseURL+"/rest/api/2/issue/"+url.PathEscape(key))
	if err != nil {
		return tracker.Issue{}, fmt.Errorf("jirasim: get issue: %w", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode == http.StatusNotFound {
		drain(resp.Body)
		return tracker.Issue{}, fmt.Errorf("jirasim: issue %s: %w", key, tracker.ErrNotFound)
	}
	if resp.StatusCode != http.StatusOK {
		drain(resp.Body)
		return tracker.Issue{}, fmt.Errorf("jirasim: get issue returned %s", resp.Status)
	}
	var wi wireIssue
	if err := json.NewDecoder(io.LimitReader(resp.Body, c.maxBody())).Decode(&wi); err != nil {
		return tracker.Issue{}, fmt.Errorf("jirasim: decode issue: %w", err)
	}
	return fromWire(wi)
}
