package jirasim

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"sdnbugs/internal/chaos"
	"sdnbugs/internal/tracker"
	"sdnbugs/internal/trackertest"
)

func TestMiningUnderChaosIsByteIdentical(t *testing.T) {
	// The tentpole property: aggressive fault injection changes the
	// retry schedule, never the mined data.
	srv, store := newServer(t)
	seedIssues(t, store)
	baseline, err := (&Client{BaseURL: srv.URL, PageSize: 2}).FetchAll(
		context.Background(), SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}

	flaky := httptest.NewServer(chaos.Wrap(NewHandler(store), chaos.Config{
		Seed: 11, Rate: 0.5, RetryAfter: time.Millisecond, Latency: time.Millisecond,
	}))
	defer flaky.Close()
	hc, rt := trackertest.ResilientClient()
	got, err := (&Client{BaseURL: flaky.URL, HTTPClient: hc, PageSize: 2}).FetchAll(
		context.Background(), SearchOptions{})
	if err != nil {
		t.Fatalf("mining under chaos failed: %v", err)
	}
	if !reflect.DeepEqual(got, baseline) {
		t.Errorf("chaos changed the mined data:\n got %+v\nwant %+v", got, baseline)
	}
	if m := rt.Metrics(); m.Retries == 0 {
		t.Errorf("metrics = %+v: chaos at rate 0.5 should have forced retries", m)
	}
}

func TestResumeContinuesFromLastCompletedPage(t *testing.T) {
	srv, store := newServer(t)
	base := time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 137; i++ {
		if err := store.Put(tracker.Issue{
			ID:         fmt.Sprintf("ONOS-%d", 1000+i),
			Controller: tracker.ONOS, Title: "t", Description: "d",
			Severity: tracker.SeverityCritical, Status: tracker.StatusClosed,
			Created: base.Add(time.Duration(i) * time.Hour),
		}); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	full, err := (&Client{BaseURL: srv.URL, PageSize: 25}).FetchAll(ctx, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// A gate that serves two pages, then fails until healed.
	gate, heal := trackertest.Gate(t, NewHandler(store), 2)

	// Plain client (no retries) so the outage surfaces immediately.
	c := Client{BaseURL: gate.URL, HTTPClient: &http.Client{}, PageSize: 25}
	var cur Cursor
	if err := c.Resume(ctx, SearchOptions{}, &cur); err == nil {
		t.Fatal("want failure on the third page")
	}
	if cur.StartAt != 50 || len(cur.Results) != 50 {
		t.Fatalf("cursor after failure: startAt=%d results=%d, want 50/50", cur.StartAt, len(cur.Results))
	}
	heal()
	if err := c.Resume(ctx, SearchOptions{}, &cur); err != nil {
		t.Fatalf("resume after heal: %v", err)
	}
	if !reflect.DeepEqual(cur.Results, full) {
		t.Errorf("resumed mining diverged: %d issues vs %d baseline", len(cur.Results), len(full))
	}
}

func TestClientSendsMiningHeaders(t *testing.T) {
	var accept, ua string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		accept, ua = r.Header.Get("Accept"), r.Header.Get("User-Agent")
		_, _ = w.Write([]byte(`{"startAt":0,"maxResults":50,"total":0,"issues":[]}`))
	}))
	defer srv.Close()
	c := Client{BaseURL: srv.URL, HTTPClient: &http.Client{}}
	if _, err := c.FetchAll(context.Background(), SearchOptions{}); err != nil {
		t.Fatal(err)
	}
	if accept != "application/json" || ua != DefaultUserAgent {
		t.Errorf("headers = Accept %q, User-Agent %q", accept, ua)
	}
	c.UserAgent = "custom/2.0"
	if _, err := c.FetchAll(context.Background(), SearchOptions{}); err != nil {
		t.Fatal(err)
	}
	if ua != "custom/2.0" {
		t.Errorf("User-Agent override = %q", ua)
	}
}

func TestInconsistentTotalDetected(t *testing.T) {
	// A server that advertises 100 results but serves none: the paging
	// guard must error out instead of spinning.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(`{"startAt":0,"maxResults":50,"total":100,"issues":[]}`))
	}))
	defer srv.Close()
	c := Client{BaseURL: srv.URL, HTTPClient: &http.Client{}}
	_, err := c.FetchAll(context.Background(), SearchOptions{})
	if err == nil || !strings.Contains(err.Error(), "no paging progress") {
		t.Fatalf("err = %v, want no-progress detection", err)
	}
}

func TestPageCapStopsRunawayPaging(t *testing.T) {
	// A server that always claims more: the hard page cap bounds the
	// loop. One issue per page with an ever-receding total.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = fmt.Fprintf(w, `{"startAt":0,"maxResults":1,"total":1000000,"issues":[`+
			`{"key":"ONOS-1","fields":{"summary":"t","description":"d",`+
			`"priority":{"name":"Critical"},"status":{"name":"Closed"},`+
			`"project":{"name":"ONOS"},"created":"2019-01-01T00:00:00.000+0000",`+
			`"comment":{"comments":[],"total":0}}}]}`)
	}))
	defer srv.Close()
	c := Client{BaseURL: srv.URL, HTTPClient: &http.Client{}, MaxPages: 5}
	_, err := c.FetchAll(context.Background(), SearchOptions{})
	if err == nil || !strings.Contains(err.Error(), "exceeded 5 pages") {
		t.Fatalf("err = %v, want page-cap error", err)
	}
}
