package jirasim

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"sdnbugs/internal/corpus"
	"sdnbugs/internal/tracker"
)

func newServer(t *testing.T) (*httptest.Server, *tracker.Store) {
	t.Helper()
	store := tracker.NewStore()
	srv := httptest.NewServer(NewHandler(store))
	t.Cleanup(srv.Close)
	return srv, store
}

func seedIssues(t *testing.T, store *tracker.Store) {
	t.Helper()
	base := time.Date(2019, 3, 1, 12, 0, 0, 0, time.UTC)
	issues := []tracker.Issue{
		{
			ID: "ONOS-1", Controller: tracker.ONOS, Title: "Cluster fails",
			Description: "Killing one instance kills the cluster.",
			Severity:    tracker.SeverityCritical, Status: tracker.StatusClosed,
			Created: base, Resolved: base.AddDate(0, 0, 12),
			Comments: []tracker.Comment{{Author: "alice", Body: "confirmed", Created: base.AddDate(0, 0, 1)}},
			Labels:   []string{"bug"},
		},
		{
			ID: "ONOS-2", Controller: tracker.ONOS, Title: "Minor glitch",
			Description: "Cosmetic only.", Severity: tracker.SeverityMinor,
			Status: tracker.StatusOpen, Created: base.AddDate(0, 0, 2),
		},
		{
			ID: "CORD-1", Controller: tracker.CORD, Title: "OLT reboot hang",
			Description: "Core thread waits forever.", Severity: tracker.SeverityBlocker,
			Status: tracker.StatusClosed, Created: base.AddDate(0, 0, 3),
			Resolved: base.AddDate(0, 0, 40),
		},
	}
	for _, iss := range issues {
		if err := store.Put(iss); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSearchRoundTrip(t *testing.T) {
	srv, store := newServer(t)
	seedIssues(t, store)
	c := Client{BaseURL: srv.URL}
	got, err := c.FetchAll(context.Background(), SearchOptions{Project: "ONOS"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d issues, want 2", len(got))
	}
	first := got[0].Issue
	if first.ID != "ONOS-1" || first.Controller != tracker.ONOS {
		t.Errorf("identity fields: %+v", first)
	}
	if first.Severity != tracker.SeverityCritical || first.Status != tracker.StatusClosed {
		t.Errorf("severity/status: %v %v", first.Severity, first.Status)
	}
	if d, ok := first.ResolutionTime(); !ok || d != 12*24*time.Hour {
		t.Errorf("resolution time: %v %v", d, ok)
	}
	if len(first.Comments) != 1 || first.Comments[0].Author != "alice" {
		t.Errorf("comments: %+v", first.Comments)
	}
}

func TestSearchFilters(t *testing.T) {
	srv, store := newServer(t)
	seedIssues(t, store)
	c := Client{BaseURL: srv.URL}
	crit, err := c.FetchAll(context.Background(), SearchOptions{Severity: "critical"})
	if err != nil {
		t.Fatal(err)
	}
	if len(crit) != 2 {
		t.Errorf("critical band: %d, want 2", len(crit))
	}
	closed, err := c.FetchAll(context.Background(), SearchOptions{Status: "Closed"})
	if err != nil {
		t.Fatal(err)
	}
	if len(closed) != 2 {
		t.Errorf("closed: %d, want 2", len(closed))
	}
}

func TestPagination(t *testing.T) {
	srv, store := newServer(t)
	base := time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 137; i++ {
		if err := store.Put(tracker.Issue{
			ID:         "ONOS-" + time.Duration(i).String(), // unique enough
			Controller: tracker.ONOS, Title: "t", Description: "d",
			Severity: tracker.SeverityCritical, Status: tracker.StatusClosed,
			Created: base.Add(time.Duration(i) * time.Hour),
		}); err != nil {
			t.Fatal(err)
		}
	}
	c := Client{BaseURL: srv.URL, PageSize: 25}
	got, err := c.FetchAll(context.Background(), SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 137 {
		t.Errorf("paged fetch = %d, want 137", len(got))
	}
	seen := map[string]bool{}
	for _, r := range got {
		if seen[r.Key] {
			t.Fatalf("duplicate issue %s across pages", r.Key)
		}
		seen[r.Key] = true
	}
}

func TestGetIssue(t *testing.T) {
	srv, store := newServer(t)
	seedIssues(t, store)
	c := Client{BaseURL: srv.URL}
	iss, err := c.GetIssue(context.Background(), "CORD-1")
	if err != nil {
		t.Fatal(err)
	}
	if iss.Controller != tracker.CORD || iss.Severity != tracker.SeverityBlocker {
		t.Errorf("got %+v", iss)
	}
	if _, err := c.GetIssue(context.Background(), "CORD-999"); !errors.Is(err, tracker.ErrNotFound) {
		t.Errorf("want ErrNotFound, got %v", err)
	}
}

func TestBadRequests(t *testing.T) {
	srv, store := newServer(t)
	seedIssues(t, store)
	c := Client{BaseURL: srv.URL}
	if _, err := c.FetchAll(context.Background(), SearchOptions{Project: "NOTREAL"}); err == nil {
		t.Error("want error for unknown project")
	}
	if _, err := c.FetchAll(context.Background(), SearchOptions{Severity: "apocalyptic"}); err == nil {
		t.Error("want error for unknown severity")
	}
}

func TestMineGeneratedCorpus(t *testing.T) {
	// End-to-end: load the generated ONOS+CORD bugs into the simulator
	// and mine them back over HTTP, as the study pipeline does.
	srv, store := newServer(t)
	corp, err := corpus.Generate(3)
	if err != nil {
		t.Fatal(err)
	}
	wantJIRA := 0
	for _, iss := range corp.Issues {
		if tracker.TrackerFor(iss.Controller) != tracker.KindJIRA {
			continue
		}
		if err := store.Put(iss); err != nil {
			t.Fatal(err)
		}
		wantJIRA++
	}
	c := Client{BaseURL: srv.URL, PageSize: 100}
	got, err := c.FetchAll(context.Background(), SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != wantJIRA {
		t.Errorf("mined %d, want %d", len(got), wantJIRA)
	}
	// 186 + 358 critical bugs (paper §II-B).
	if wantJIRA != 186+358 {
		t.Errorf("JIRA corpus size = %d, want 544", wantJIRA)
	}
	for _, r := range got {
		want := corp.Labels[r.Key]
		if want.Trigger.String() == "unknown" {
			t.Fatalf("mined unknown issue %s", r.Key)
		}
		if r.Issue.Description == "" {
			t.Fatalf("issue %s lost its description in transit", r.Key)
		}
	}
}

func TestClientHandlesServerFailure(t *testing.T) {
	// A server that always 500s: the client reports the status rather
	// than hanging or panicking.
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer bad.Close()
	c := Client{BaseURL: bad.URL}
	if _, err := c.FetchAll(context.Background(), SearchOptions{}); err == nil {
		t.Error("want error from failing server")
	}
	if _, err := c.GetIssue(context.Background(), "ONOS-1"); err == nil {
		t.Error("want error from failing server")
	}
}

func TestClientHandlesGarbageJSON(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("this is not json"))
	}))
	defer bad.Close()
	c := Client{BaseURL: bad.URL}
	if _, err := c.FetchAll(context.Background(), SearchOptions{}); err == nil {
		t.Error("want decode error")
	}
}

func TestClientBadBaseURL(t *testing.T) {
	c := Client{BaseURL: "http://127.0.0.1:1"} // nothing listens here
	if _, err := c.FetchAll(context.Background(), SearchOptions{}); err == nil {
		t.Error("want connection error")
	}
}
