// Package jirasim implements a JIRA-like REST API over a tracker.Store
// — the stand-in for the live JIRA instances the paper mined ONOS and
// CORD bugs from — together with a typed client that plays the miner's
// role. The wire format mirrors JIRA's /rest/api/2 shapes closely
// enough that the mining code path (search, pagination, severity
// filters, resolution timestamps) is exercised exactly as it would be
// against the real service.
package jirasim

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"sdnbugs/internal/tracker"
)

// jiraTime is JIRA's timestamp format.
const jiraTime = "2006-01-02T15:04:05.000-0700"

// Handler serves the JIRA-like API for the given store.
type Handler struct {
	store *tracker.Store
	mux   *http.ServeMux
}

var _ http.Handler = (*Handler)(nil)

// NewHandler builds a Handler backed by store.
func NewHandler(store *tracker.Store) *Handler {
	h := &Handler{store: store, mux: http.NewServeMux()}
	h.mux.HandleFunc("GET /rest/api/2/search", h.handleSearch)
	h.mux.HandleFunc("GET /rest/api/2/issue/{key}", h.handleIssue)
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

// wireIssue is the JIRA issue JSON shape.
type wireIssue struct {
	Key    string     `json:"key"`
	Fields wireFields `json:"fields"`
}

type wireFields struct {
	Summary        string       `json:"summary"`
	Description    string       `json:"description"`
	Priority       wireNamed    `json:"priority"`
	Status         wireNamed    `json:"status"`
	Project        wireNamed    `json:"project"`
	Created        string       `json:"created"`
	ResolutionDate string       `json:"resolutiondate,omitempty"`
	Labels         []string     `json:"labels,omitempty"`
	Comment        wireComments `json:"comment"`
}

type wireNamed struct {
	Name string `json:"name"`
}

type wireComments struct {
	Comments []wireComment `json:"comments"`
	Total    int           `json:"total"`
}

type wireComment struct {
	Author  wireNamed `json:"author"`
	Body    string    `json:"body"`
	Created string    `json:"created"`
}

type searchResponse struct {
	StartAt    int         `json:"startAt"`
	MaxResults int         `json:"maxResults"`
	Total      int         `json:"total"`
	Issues     []wireIssue `json:"issues"`
}

func toWire(iss tracker.Issue) wireIssue {
	w := wireIssue{
		Key: iss.ID,
		Fields: wireFields{
			Summary:     iss.Title,
			Description: iss.Description,
			Priority:    wireNamed{Name: severityToPriority(iss.Severity)},
			Status:      wireNamed{Name: statusName(iss.Status)},
			Project:     wireNamed{Name: iss.Controller.String()},
			Created:     iss.Created.Format(jiraTime),
			Labels:      iss.Labels,
		},
	}
	if !iss.Resolved.IsZero() {
		w.Fields.ResolutionDate = iss.Resolved.Format(jiraTime)
	}
	for _, c := range iss.Comments {
		w.Fields.Comment.Comments = append(w.Fields.Comment.Comments, wireComment{
			Author:  wireNamed{Name: c.Author},
			Body:    c.Body,
			Created: c.Created.Format(jiraTime),
		})
	}
	w.Fields.Comment.Total = len(w.Fields.Comment.Comments)
	return w
}

func severityToPriority(s tracker.Severity) string {
	switch s {
	case tracker.SeverityBlocker:
		return "Blocker"
	case tracker.SeverityCritical:
		return "Critical"
	case tracker.SeverityMajor:
		return "Major"
	case tracker.SeverityMinor:
		return "Minor"
	default:
		return "Trivial"
	}
}

func priorityToSeverity(name string) tracker.Severity {
	switch strings.ToLower(name) {
	case "blocker":
		return tracker.SeverityBlocker
	case "critical":
		return tracker.SeverityCritical
	case "major":
		return tracker.SeverityMajor
	case "minor":
		return tracker.SeverityMinor
	default:
		return tracker.SeverityTrivial
	}
}

func statusName(s tracker.Status) string {
	switch s {
	case tracker.StatusClosed:
		return "Closed"
	case tracker.StatusResolved:
		return "Resolved"
	case tracker.StatusInProgress:
		return "In Progress"
	default:
		return "Open"
	}
}

func parseStatus(name string) tracker.Status {
	switch strings.ToLower(name) {
	case "closed":
		return tracker.StatusClosed
	case "resolved":
		return tracker.StatusResolved
	case "in progress", "in-progress":
		return tracker.StatusInProgress
	case "open":
		return tracker.StatusOpen
	default:
		return tracker.StatusUnknown
	}
}

func (h *Handler) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := tracker.Query{}
	qs := r.URL.Query()
	if p := qs.Get("project"); p != "" {
		ctl, err := tracker.ParseController(p)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		q.Controller = ctl
	}
	if sev := qs.Get("severity"); sev != "" {
		s, err := tracker.ParseSeverity(strings.ToLower(sev))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		q.MinSeverity = s
	}
	if st := qs.Get("status"); st != "" {
		q.Status = parseStatus(st)
	}
	q.Offset = atoiDefault(qs.Get("startAt"), 0)
	q.Limit = atoiDefault(qs.Get("maxResults"), 50)
	if q.Limit > 200 {
		q.Limit = 200
	}

	issues, total := h.store.List(q)
	resp := searchResponse{
		StartAt:    q.Offset,
		MaxResults: q.Limit,
		Total:      total,
	}
	for _, iss := range issues {
		resp.Issues = append(resp.Issues, toWire(iss))
	}
	writeJSON(w, resp)
}

func (h *Handler) handleIssue(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	iss, err := h.store.Get(key)
	if err != nil {
		if errors.Is(err, tracker.ErrNotFound) {
			http.Error(w, "issue not found", http.StatusNotFound)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, toWire(iss))
}

func atoiDefault(s string, def int) int {
	if s == "" {
		return def
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return def
	}
	return n
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already written; nothing more we can do.
		return
	}
}

// fromWire converts a JIRA wire issue back to the neutral model.
func fromWire(wi wireIssue) (tracker.Issue, error) {
	iss := tracker.Issue{
		ID:          wi.Key,
		Title:       wi.Fields.Summary,
		Description: wi.Fields.Description,
		Severity:    priorityToSeverity(wi.Fields.Priority.Name),
		Status:      parseStatus(wi.Fields.Status.Name),
		Labels:      wi.Fields.Labels,
	}
	if ctl, err := tracker.ParseController(wi.Fields.Project.Name); err == nil {
		iss.Controller = ctl
	}
	var err error
	if iss.Created, err = time.Parse(jiraTime, wi.Fields.Created); err != nil {
		return iss, fmt.Errorf("jirasim: bad created time %q: %w", wi.Fields.Created, err)
	}
	if wi.Fields.ResolutionDate != "" {
		if iss.Resolved, err = time.Parse(jiraTime, wi.Fields.ResolutionDate); err != nil {
			return iss, fmt.Errorf("jirasim: bad resolution time %q: %w", wi.Fields.ResolutionDate, err)
		}
	}
	for _, c := range wi.Fields.Comment.Comments {
		created, err := time.Parse(jiraTime, c.Created)
		if err != nil {
			return iss, fmt.Errorf("jirasim: bad comment time %q: %w", c.Created, err)
		}
		iss.Comments = append(iss.Comments, tracker.Comment{
			Author: c.Author.Name, Body: c.Body, Created: created,
		})
	}
	return iss, nil
}
