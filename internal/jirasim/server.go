// Package jirasim implements a JIRA-like REST API over a tracker.Store
// — the stand-in for the live JIRA instances the paper mined ONOS and
// CORD bugs from — together with a typed client that plays the miner's
// role. The wire format mirrors JIRA's /rest/api/2 shapes closely
// enough that the mining code path (search, pagination, severity
// filters, resolution timestamps) is exercised exactly as it would be
// against the real service.
//
// The serving logic itself lives in internal/trackerd (the shared
// tracker engine, which also hosts the multi-tenant durable service);
// this package is the single-store compatibility surface plus the
// mining client.
package jirasim

import (
	"net/http"

	"sdnbugs/internal/tracker"
	"sdnbugs/internal/trackerd"
)

// Handler serves the JIRA-like API for the given store.
type Handler struct {
	inner http.Handler
}

var _ http.Handler = (*Handler)(nil)

// NewHandler builds a Handler backed by store.
func NewHandler(store *tracker.Store) *Handler {
	return &Handler{inner: trackerd.NewJIRAHandler(trackerd.StoreSource{Store: store})}
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.inner.ServeHTTP(w, r)
}

// wireIssue and searchResponse are the JIRA wire shapes, owned by the
// shared engine.
type (
	wireIssue      = trackerd.JIRAIssue
	searchResponse = trackerd.JIRASearchResponse
)

// fromWire converts a JIRA wire issue back to the neutral model.
func fromWire(wi wireIssue) (tracker.Issue, error) {
	return trackerd.FromJIRAWire(wi)
}
