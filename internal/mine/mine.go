// Package mine is the resumable mining driver: it pages issues out of
// the JIRA and GitHub tracker simulators into a crash-consistent
// tracker.DurableStore, checkpointing after every page. Each page is
// persisted issue-by-issue and then the paging cursor is saved, in that
// order — so a crash at any point (mid-page, between issues and cursor,
// mid-fsync) loses at most the cursor advance, and the next run
// re-fetches one page whose re-Puts are idempotent. The recovered
// corpus is therefore byte-identical to an uninterrupted run, which is
// exactly what experiment E23 asserts.
package mine

import (
	"context"
	"encoding/json"
	"fmt"

	"sdnbugs/internal/ghsim"
	"sdnbugs/internal/jirasim"
	"sdnbugs/internal/tracker"
)

// Cursor names in the durable store.
const (
	jiraCursorName   = "jira"
	githubCursorName = "github"
)

// Config drives one mining run.
type Config struct {
	// JIRA mines the JIRA tracker when non-nil. The client is copied;
	// its OnPage hook is owned by the miner.
	JIRA *jirasim.Client
	// JIRAOpts filter the JIRA search (zero value = everything).
	JIRAOpts jirasim.SearchOptions
	// GitHub mines the GitHub tracker when non-nil (copied, like JIRA).
	GitHub *ghsim.Client
	// GitHubState filters the GitHub listing ("open", "closed", "" = all).
	GitHubState string
	// Store receives every mined issue and the paging cursors.
	Store *tracker.DurableStore
}

// Result summarizes a mining run.
type Result struct {
	// JIRAFetched and GitHubFetched count issues fetched in this run.
	JIRAFetched, GitHubFetched int
	// Restored counts issues already recovered from the state directory
	// when the run started (non-zero exactly when resuming).
	Restored int
	// Total is the corpus size when the run finished.
	Total int
}

type jiraCursorState struct {
	StartAt int `json:"start_at"`
}

type githubCursorState struct {
	Page int `json:"page"`
}

// Run mines all configured trackers into cfg.Store, resuming from any
// cursors the store already holds. On error (including a disk crash
// mid-run) everything checkpointed so far is durable; calling Run again
// on a reopened store continues where the last checkpoint stood.
func Run(ctx context.Context, cfg Config) (Result, error) {
	if cfg.Store == nil {
		return Result{}, fmt.Errorf("mine: no store configured")
	}
	res := Result{Restored: cfg.Store.Len()}
	if cfg.JIRA != nil {
		n, err := mineJIRA(ctx, cfg)
		res.JIRAFetched = n
		if err != nil {
			res.Total = cfg.Store.Len()
			return res, err
		}
	}
	if cfg.GitHub != nil {
		n, err := mineGitHub(ctx, cfg)
		res.GitHubFetched = n
		if err != nil {
			res.Total = cfg.Store.Len()
			return res, err
		}
	}
	res.Total = cfg.Store.Len()
	return res, nil
}

// loadCursor decodes the saved cursor for name into state (left at its
// zero value when no cursor is saved yet).
func loadCursor(st *tracker.DurableStore, name string, state any) error {
	raw, ok := st.Cursor(name)
	if !ok {
		return nil
	}
	if err := json.Unmarshal(raw, state); err != nil {
		return fmt.Errorf("mine: corrupt %s cursor: %w", name, err)
	}
	return nil
}

// saveCursor persists state as the cursor for name.
func saveCursor(st *tracker.DurableStore, name string, state any) error {
	raw, err := json.Marshal(state)
	if err != nil {
		return fmt.Errorf("mine: encode %s cursor: %w", name, err)
	}
	return st.SaveCursor(name, raw)
}

func mineJIRA(ctx context.Context, cfg Config) (fetched int, err error) {
	st := cfg.Store
	var state jiraCursorState
	if err := loadCursor(st, jiraCursorName, &state); err != nil {
		return 0, err
	}
	cur := jirasim.Cursor{StartAt: state.StartAt}
	persisted := 0
	cl := *cfg.JIRA
	cl.OnPage = func(c *jirasim.Cursor) error {
		// Issues first, cursor last: re-fetching a page is idempotent,
		// skipping one is not.
		for _, r := range c.Results[persisted:] {
			if err := st.Put(r.Issue); err != nil {
				return err
			}
		}
		fetched += len(c.Results) - persisted
		persisted = len(c.Results)
		return saveCursor(st, jiraCursorName, jiraCursorState{StartAt: c.StartAt})
	}
	if err := cl.Resume(ctx, cfg.JIRAOpts, &cur); err != nil {
		return fetched, fmt.Errorf("mine: jira: %w", err)
	}
	return fetched, nil
}

func mineGitHub(ctx context.Context, cfg Config) (fetched int, err error) {
	st := cfg.Store
	var state githubCursorState
	if err := loadCursor(st, githubCursorName, &state); err != nil {
		return 0, err
	}
	cur := ghsim.Cursor{Page: state.Page}
	persisted := 0
	cl := *cfg.GitHub
	cl.OnPage = func(c *ghsim.Cursor) error {
		for _, iss := range c.Issues[persisted:] {
			if err := st.Put(iss); err != nil {
				return err
			}
		}
		fetched += len(c.Issues) - persisted
		persisted = len(c.Issues)
		return saveCursor(st, githubCursorName, githubCursorState{Page: c.Page})
	}
	if err := cl.Resume(ctx, cfg.GitHubState, &cur); err != nil {
		return fetched, fmt.Errorf("mine: github: %w", err)
	}
	return fetched, nil
}
