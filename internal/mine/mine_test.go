package mine

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"sdnbugs/internal/diskfault"
	"sdnbugs/internal/durable"
	"sdnbugs/internal/ghsim"
	"sdnbugs/internal/jirasim"
	"sdnbugs/internal/tracker"
)

// seedServers builds JIRA and GitHub simulators holding a small
// deterministic corpus and returns their test servers.
func seedServers(t *testing.T, nJira, nGH int) (jiraURL, ghURL string) {
	t.Helper()
	jiraStore, ghStore := tracker.NewStore(), tracker.NewStore()
	base := time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < nJira; i++ {
		iss := tracker.Issue{
			ID:          fmt.Sprintf("ONOS-%d", i+1),
			Controller:  tracker.ONOS,
			Title:       fmt.Sprintf("flow rule desync %d", i),
			Description: "switch and store disagree after failover",
			Severity:    tracker.SeverityMajor,
			Status:      tracker.StatusResolved,
			Created:     base.Add(time.Duration(i) * time.Hour),
			Resolved:    base.Add(time.Duration(i)*time.Hour + 48*time.Hour),
			Labels:      []string{"bug"},
		}
		if err := jiraStore.Put(iss); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < nGH; i++ {
		iss := tracker.Issue{
			ID:          fmt.Sprintf("FAUCET#%d", i+1),
			Controller:  tracker.FAUCET,
			Title:       fmt.Sprintf("controller crash on malformed packet %d", i),
			Description: "traceback in valve.py",
			Status:      tracker.StatusClosed,
			Created:     base.Add(time.Duration(i) * time.Minute),
			Labels:      []string{"bug"},
		}
		if err := ghStore.Put(iss); err != nil {
			t.Fatal(err)
		}
	}
	js := httptest.NewServer(jirasim.NewHandler(jiraStore))
	t.Cleanup(js.Close)
	gs := httptest.NewServer(ghsim.NewHandler(ghStore, "faucetsdn", "faucet"))
	t.Cleanup(gs.Close)
	return js.URL, gs.URL
}

func miningConfig(jiraURL, ghURL string, st *tracker.DurableStore) Config {
	plain := &http.Client{}
	return Config{
		JIRA:   &jirasim.Client{BaseURL: jiraURL, HTTPClient: plain, PageSize: 7},
		GitHub: &ghsim.Client{BaseURL: ghURL, Repo: "faucetsdn/faucet", HTTPClient: plain, PerPage: 7},
		Store:  st,
	}
}

func TestMineRoundTrip(t *testing.T) {
	jiraURL, ghURL := seedServers(t, 23, 11)
	mem := diskfault.NewMemFS()
	d, err := durable.Open("state", durable.Options{FS: mem, SnapshotEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	st, err := tracker.NewDurableStore(d)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), miningConfig(jiraURL, ghURL, st))
	if err != nil {
		t.Fatal(err)
	}
	if res.JIRAFetched != 23 || res.GitHubFetched != 11 || res.Total != 34 || res.Restored != 0 {
		t.Fatalf("result = %+v, want 23+11", res)
	}
	fingerprint := st.CorpusBytes()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the corpus is back, and a second run fetches nothing new.
	d2, err := durable.Open("state", durable.Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	st2, err := tracker.NewDurableStore(d2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = st2.Close() }()
	res2, err := Run(context.Background(), miningConfig(jiraURL, ghURL, st2))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Restored != 34 || res2.JIRAFetched != 0 || res2.GitHubFetched != 0 || res2.Total != 34 {
		t.Fatalf("second run = %+v, want pure restore", res2)
	}
	if !bytes.Equal(st2.CorpusBytes(), fingerprint) {
		t.Error("corpus changed across reopen + idempotent re-run")
	}
}

// TestMineKillAndResume is the unit-scale version of experiment E23:
// the miner is killed by a disk crash at a range of scheduled points
// and resumed on a reopened store until it finishes; the final corpus
// must be byte-identical to an uninterrupted run's.
func TestMineKillAndResume(t *testing.T) {
	jiraURL, ghURL := seedServers(t, 23, 11)

	clean := func() []byte {
		mem := diskfault.NewMemFS()
		d, err := durable.Open("state", durable.Options{FS: mem, SnapshotEvery: 10})
		if err != nil {
			t.Fatal(err)
		}
		st, err := tracker.NewDurableStore(d)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = st.Close() }()
		if _, err := Run(context.Background(), miningConfig(jiraURL, ghURL, st)); err != nil {
			t.Fatal(err)
		}
		return st.CorpusBytes()
	}()

	for _, crashAt := range []int{1, 5, 17, 40, 77} {
		t.Run(fmt.Sprintf("crash%03d", crashAt), func(t *testing.T) {
			mem := diskfault.NewMemFS()
			rounds, fetchedTotal := 0, 0
			crashed := false
			for {
				rounds++
				if rounds > 10 {
					t.Fatal("miner did not converge")
				}
				var fsys diskfault.FS = mem
				if !crashed {
					fsys = diskfault.New(mem, diskfault.Config{Seed: int64(crashAt), CrashAfterOps: crashAt})
				}
				d, err := durable.Open("state", durable.Options{FS: fsys, SnapshotEvery: 10, TakeOver: true})
				if err != nil {
					if errors.Is(err, diskfault.ErrCrashed) {
						crashed = true
						continue // "reboot" and retry without the bomb
					}
					t.Fatal(err)
				}
				st, err := tracker.NewDurableStore(d)
				if err != nil {
					t.Fatal(err)
				}
				res, runErr := Run(context.Background(), miningConfig(jiraURL, ghURL, st))
				fetchedTotal += res.JIRAFetched + res.GitHubFetched
				_ = st.Close()
				if runErr == nil {
					if res.Total != 34 {
						t.Fatalf("converged at %d issues, want 34", res.Total)
					}
					break
				}
				if !errors.Is(runErr, diskfault.ErrCrashed) {
					t.Fatalf("mining failed with a non-crash error: %v", runErr)
				}
				crashed = true
			}
			if !crashed {
				t.Fatalf("crash point %d never fired", crashAt)
			}
			// Page replays may re-fetch issues, never lose them.
			if fetchedTotal < 34 {
				t.Errorf("fetched %d issues total, want >= 34", fetchedTotal)
			}

			d, err := durable.Open("state", durable.Options{FS: mem, TakeOver: true})
			if err != nil {
				t.Fatal(err)
			}
			st, err := tracker.NewDurableStore(d)
			if err != nil {
				t.Fatal(err)
			}
			defer func() { _ = st.Close() }()
			if !bytes.Equal(st.CorpusBytes(), clean) {
				t.Error("recovered corpus differs from clean single-shot run")
			}
		})
	}
}
