package diskfault

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// MemFS is an in-memory filesystem. It is the "disk" of the crash-point
// experiments: a FaultFS wrapped around a MemFS can crash and be thrown
// away while the MemFS keeps the bytes that reached it, exactly like a
// machine whose process died but whose disk survived. Open handles are
// counted so tests can assert a store's Close released everything.
//
// MemFS is safe for concurrent use.
type MemFS struct {
	mu      sync.Mutex
	files   map[string]*memNode
	dirs    map[string]bool
	handles int
}

var _ FS = (*MemFS)(nil)

// memNode is one file's contents. Handles reference the node, so a
// rename (which re-keys the node) or remove leaves existing handles
// working on the same bytes, like a POSIX fd.
type memNode struct {
	data []byte
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*memNode), dirs: map[string]bool{".": true, "/": true}}
}

// OpenHandles returns the number of files currently open — zero once
// every handle has been closed.
func (m *MemFS) OpenHandles() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.handles
}

// Snapshot returns a deep copy of the current file contents, keyed by
// cleaned path — a debugging aid for crash tests.
func (m *MemFS) Snapshot() map[string][]byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string][]byte, len(m.files))
	for p, n := range m.files {
		out[p] = append([]byte(nil), n.data...)
	}
	return out
}

func clean(p string) string { return filepath.ToSlash(filepath.Clean(p)) }

// OpenFile implements FS.
func (m *MemFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	path := clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	node, exists := m.files[path]
	switch {
	case exists && flag&os.O_EXCL != 0 && flag&os.O_CREATE != 0:
		return nil, pathError("open", path, fs.ErrExist)
	case !exists && flag&os.O_CREATE == 0:
		return nil, pathError("open", path, fs.ErrNotExist)
	case !exists:
		node = &memNode{}
		m.files[path] = node
	case flag&os.O_TRUNC != 0:
		node.data = nil
	}
	m.handles++
	return &memHandle{fs: m, node: node, writable: flag&(os.O_WRONLY|os.O_RDWR) != 0,
		appendMode: flag&os.O_APPEND != 0}, nil
}

// Rename implements FS.
func (m *MemFS) Rename(oldpath, newpath string) error {
	op, np := clean(oldpath), clean(newpath)
	m.mu.Lock()
	defer m.mu.Unlock()
	node, ok := m.files[op]
	if !ok {
		return pathError("rename", op, fs.ErrNotExist)
	}
	m.files[np] = node
	delete(m.files, op)
	return nil
}

// Remove implements FS.
func (m *MemFS) Remove(name string) error {
	path := clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[path]; !ok {
		return pathError("remove", path, fs.ErrNotExist)
	}
	delete(m.files, path)
	return nil
}

// MkdirAll implements FS.
func (m *MemFS) MkdirAll(path string, perm os.FileMode) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dirs[clean(path)] = true
	return nil
}

// ReadDir implements FS.
func (m *MemFS) ReadDir(dir string) ([]string, error) {
	prefix := clean(dir) + "/"
	m.mu.Lock()
	defer m.mu.Unlock()
	var names []string
	for p := range m.files {
		if rest, ok := strings.CutPrefix(p, prefix); ok && !strings.Contains(rest, "/") {
			names = append(names, rest)
		}
	}
	sort.Strings(names)
	return names, nil
}

// memHandle is an open MemFS file.
type memHandle struct {
	fs         *MemFS
	node       *memNode
	offset     int64
	writable   bool
	appendMode bool
	closed     bool
}

var _ File = (*memHandle)(nil)

func (h *memHandle) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, fs.ErrClosed
	}
	if h.offset >= int64(len(h.node.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.node.data[h.offset:])
	h.offset += int64(n)
	return n, nil
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, fs.ErrClosed
	}
	if !h.writable {
		return 0, errf("write on read-only handle")
	}
	if h.appendMode {
		h.offset = int64(len(h.node.data))
	}
	end := h.offset + int64(len(p))
	if end > int64(len(h.node.data)) {
		grown := make([]byte, end)
		copy(grown, h.node.data)
		h.node.data = grown
	}
	copy(h.node.data[h.offset:end], p)
	h.offset = end
	return len(p), nil
}

func (h *memHandle) Seek(offset int64, whence int) (int64, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, fs.ErrClosed
	}
	switch whence {
	case io.SeekStart:
		h.offset = offset
	case io.SeekCurrent:
		h.offset += offset
	case io.SeekEnd:
		h.offset = int64(len(h.node.data)) + offset
	default:
		return 0, errf("bad seek whence %d", whence)
	}
	if h.offset < 0 {
		return 0, errf("negative seek offset")
	}
	return h.offset, nil
}

func (h *memHandle) Truncate(size int64) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return fs.ErrClosed
	}
	if !h.writable {
		return errf("truncate on read-only handle")
	}
	switch {
	case size < 0:
		return errf("negative truncate size")
	case size <= int64(len(h.node.data)):
		h.node.data = h.node.data[:size]
	default:
		grown := make([]byte, size)
		copy(grown, h.node.data)
		h.node.data = grown
	}
	return nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return fs.ErrClosed
	}
	return nil
}

func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return nil
	}
	h.closed = true
	h.fs.handles--
	return nil
}
