package diskfault

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
)

// implementations runs a subtest against both MemFS and the real
// filesystem, so the in-memory substrate cannot drift from os semantics.
func implementations(t *testing.T) map[string]func(t *testing.T) (FS, string) {
	return map[string]func(t *testing.T) (FS, string){
		"mem": func(t *testing.T) (FS, string) { return NewMemFS(), "state" },
		"os":  func(t *testing.T) (FS, string) { return OS(), t.TempDir() },
	}
}

func TestFSRoundTrip(t *testing.T) {
	for name, mk := range implementations(t) {
		t.Run(name, func(t *testing.T) {
			fsys, dir := mk(t)
			if err := fsys.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, "a.log")
			f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte("hello world")); err != nil {
				t.Fatal(err)
			}
			if err := f.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := f.Truncate(5); err != nil {
				t.Fatal(err)
			}
			if _, err := f.Seek(0, io.SeekStart); err != nil {
				t.Fatal(err)
			}
			data, err := io.ReadAll(f)
			if err != nil {
				t.Fatal(err)
			}
			if string(data) != "hello" {
				t.Errorf("after truncate read %q, want %q", data, "hello")
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}

			// O_EXCL on an existing file must fail with fs.ErrExist.
			if _, err := fsys.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644); !errors.Is(err, fs.ErrExist) {
				t.Errorf("O_EXCL on existing file: err = %v, want fs.ErrExist", err)
			}
			// Opening a missing file without O_CREATE fails with ErrNotExist.
			if _, err := fsys.OpenFile(filepath.Join(dir, "missing"), os.O_RDONLY, 0); !errors.Is(err, fs.ErrNotExist) {
				t.Errorf("open missing: err = %v, want fs.ErrNotExist", err)
			}

			// Rename replaces the destination atomically.
			other := filepath.Join(dir, "b.log")
			g, err := fsys.OpenFile(other, os.O_CREATE|os.O_WRONLY, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := g.Write([]byte("other")); err != nil {
				t.Fatal(err)
			}
			if err := g.Close(); err != nil {
				t.Fatal(err)
			}
			if err := fsys.Rename(path, other); err != nil {
				t.Fatal(err)
			}
			names, err := fsys.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(names) != 1 || names[0] != "b.log" {
				t.Errorf("ReadDir after rename = %v, want [b.log]", names)
			}
			if err := fsys.Remove(other); err != nil {
				t.Fatal(err)
			}
			if err := fsys.Remove(other); !errors.Is(err, fs.ErrNotExist) {
				t.Errorf("double remove: err = %v, want fs.ErrNotExist", err)
			}
		})
	}
}

func TestMemFSHandleAccounting(t *testing.T) {
	m := NewMemFS()
	f, err := m.OpenFile("x", os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	g, err := m.OpenFile("y", os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if n := m.OpenHandles(); n != 2 {
		t.Fatalf("open handles = %d, want 2", n)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// Close is idempotent and must not double-decrement.
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if n := m.OpenHandles(); n != 0 {
		t.Fatalf("open handles after close = %d, want 0", n)
	}
	if _, err := f.Write([]byte("z")); !errors.Is(err, fs.ErrClosed) {
		t.Errorf("write after close: err = %v, want fs.ErrClosed", err)
	}
}

func TestFaultFSCrashTearsInFlightWrite(t *testing.T) {
	mem := NewMemFS()
	ffs := New(mem, Config{Seed: 1, CrashAfterOps: 2})
	f, err := ffs.OpenFile("wal", os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("first-record")); err != nil { // op 1: applies
		t.Fatal(err)
	}
	_, err = f.Write([]byte("second-record")) // op 2: crash, torn
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("write at crash point: err = %v, want ErrCrashed", err)
	}
	if err := f.Close(); err != nil { // close still releases the handle
		t.Fatal(err)
	}
	if n := mem.OpenHandles(); n != 0 {
		t.Fatalf("handles after crashed close = %d, want 0", n)
	}
	// Everything after the crash fails, reads included.
	if _, err := ffs.OpenFile("wal", os.O_RDONLY, 0); !errors.Is(err, ErrCrashed) {
		t.Errorf("open after crash: err = %v, want ErrCrashed", err)
	}
	st := ffs.Stats()
	if !st.Crashed || st.Ops != 2 {
		t.Errorf("stats = %+v, want crashed at op 2", st)
	}
	data := mem.Snapshot()["wal"]
	if len(data) < len("first-record") || string(data[:12]) != "first-record" {
		t.Fatalf("pre-crash write lost: disk = %q", data)
	}
	torn := len(data) - len("first-record")
	if torn <= 0 || torn >= len("second-record") {
		t.Errorf("torn prefix = %d bytes of %d, want strictly partial", torn, len("second-record"))
	}
	if st.TornBytes != torn {
		t.Errorf("TornBytes = %d, disk shows %d", st.TornBytes, torn)
	}
}

func TestFaultFSDeterministicSchedule(t *testing.T) {
	run := func() (Stats, []byte) {
		mem := NewMemFS()
		ffs := New(mem, Config{Seed: 7, ShortWriteRate: 0.3, SyncFailRate: 0.2})
		f, err := ffs.OpenFile("wal", os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			_, _ = f.Write([]byte("payload-payload"))
			_ = f.Sync()
		}
		_ = f.Close()
		return ffs.Stats(), mem.Snapshot()["wal"]
	}
	s1, d1 := run()
	s2, d2 := run()
	if s1 != s2 {
		t.Errorf("stats diverged across identical runs: %+v vs %+v", s1, s2)
	}
	if string(d1) != string(d2) {
		t.Error("disk contents diverged across identical runs")
	}
	if s1.ShortWrites == 0 || s1.SyncFails == 0 {
		t.Errorf("expected transient injections at these rates, got %+v", s1)
	}
}

func TestFaultFSTransientFaultsDoNotCrash(t *testing.T) {
	mem := NewMemFS()
	ffs := New(mem, Config{Seed: 3, RenameFailRate: 1})
	f, err := ffs.OpenFile("a", os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("xx")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ffs.Rename("a", "b"); !errors.Is(err, ErrInjected) {
		t.Fatalf("rename: err = %v, want ErrInjected", err)
	}
	// The rename did not happen, and the filesystem still works.
	if _, ok := mem.Snapshot()["a"]; !ok {
		t.Error("failed rename must leave the source in place")
	}
	if _, err := ffs.OpenFile("a", os.O_RDONLY, 0); err != nil {
		t.Errorf("filesystem dead after transient fault: %v", err)
	}
}
