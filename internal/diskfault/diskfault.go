// Package diskfault abstracts the handful of filesystem operations the
// durable store performs (internal/durable) behind an interface, so
// tests and experiments can interpose a seed-deterministic fault
// injector between the store and its "disk". The injector models the
// storage failures the paper's taxonomy files under reboot/fail-stop
// bugs: short writes, torn writes at byte granularity, failed syncs,
// failed renames, and scheduled crash points after which every
// operation fails as if the process had died mid-write.
//
// Three implementations ship with the package:
//
//   - OS() — the real filesystem, used by `sdnbugs mine -state-dir`.
//   - MemFS — an in-memory filesystem with open-handle accounting,
//     the substrate for crash-point matrices (state survives a
//     simulated process death because the MemFS outlives the injector).
//   - FaultFS — the injector itself, wrapping any FS.
package diskfault

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
)

// File is the subset of *os.File the durable store uses.
type File interface {
	io.Reader
	io.Writer
	// Seek repositions the read/write offset like os.File.Seek.
	Seek(offset int64, whence int) (int64, error)
	// Truncate changes the file's size without moving the offset.
	Truncate(size int64) error
	// Sync flushes the file to stable storage.
	Sync() error
	// Close releases the handle. Close is idempotent on MemFS files.
	Close() error
}

// FS is the subset of the os package the durable store uses.
type FS interface {
	// OpenFile opens name honoring the os.O_* flags the store uses
	// (O_RDONLY, O_RDWR, O_WRONLY, O_CREATE, O_EXCL, O_TRUNC).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// MkdirAll creates a directory and its parents.
	MkdirAll(path string, perm os.FileMode) error
	// ReadDir lists the entry names (not full paths) of dir, sorted.
	ReadDir(dir string) ([]string, error)
}

// OS returns the real filesystem.
func OS() FS { return osFS{} }

// osFS delegates to the os package.
type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// pathError builds an fs-flavoured error so callers can use errors.Is
// with fs.ErrNotExist / fs.ErrExist across implementations.
func pathError(op, path string, sentinel error) error {
	return &fs.PathError{Op: op, Path: filepath.ToSlash(path), Err: sentinel}
}

// errf is fmt.Errorf with the package prefix.
func errf(format string, args ...any) error {
	return fmt.Errorf("diskfault: "+format, args...)
}
