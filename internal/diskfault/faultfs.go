package diskfault

import (
	"errors"
	"math/rand"
	"os"
	"sync"
)

// ErrCrashed is the error every operation returns once a FaultFS hit
// its scheduled crash point: from the store's point of view the process
// died. The bytes already applied to the inner FS — including the torn
// prefix of the in-flight write — are what recovery gets to see.
var ErrCrashed = errors.New("diskfault: crashed at scheduled crash point")

// ErrInjected tags transient injected failures (short writes, failed
// syncs, failed renames). Unlike ErrCrashed the filesystem keeps
// working afterwards; the operation simply failed once.
var ErrInjected = errors.New("diskfault: injected fault")

// Config tunes a FaultFS. The zero value injects nothing.
type Config struct {
	// Seed drives every injection decision; equal seeds and operation
	// sequences produce identical fault schedules.
	Seed int64
	// CrashAfterOps crashes the filesystem on the Nth write-class
	// operation (1-based; Write, Truncate, Sync, Rename, Remove).
	// A crash landing on a Write applies a torn prefix of the payload —
	// cut at a seed-chosen byte — before failing; every later operation
	// returns ErrCrashed. 0 never crashes.
	CrashAfterOps int
	// ShortWriteRate is the probability a Write applies only a
	// seed-chosen prefix and returns ErrInjected.
	ShortWriteRate float64
	// SyncFailRate is the probability a Sync returns ErrInjected.
	SyncFailRate float64
	// RenameFailRate is the probability a Rename returns ErrInjected
	// without renaming.
	RenameFailRate float64
}

// Stats counts what a FaultFS saw and injected.
type Stats struct {
	// Ops counts write-class operations (the crash clock).
	Ops int
	// ShortWrites, SyncFails and RenameFails count transient injections.
	ShortWrites, SyncFails, RenameFails int
	// Crashed reports whether the crash point fired; TornBytes is how
	// many bytes of the in-flight write still reached the inner FS.
	Crashed   bool
	TornBytes int
}

// opFate classifies one write-class operation.
type opFate int

const (
	opOK opFate = iota
	opCrash
	opInject
)

// FaultFS injects faults between a caller and an inner FS. It is safe
// for concurrent use; decisions are serialized so a fixed operation
// order yields a fixed fault schedule.
type FaultFS struct {
	inner FS
	cfg   Config

	mu      sync.Mutex
	rng     *rand.Rand
	crashed bool
	stats   Stats
}

var _ FS = (*FaultFS)(nil)

// New wraps inner with fault injection.
func New(inner FS, cfg Config) *FaultFS {
	return &FaultFS{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Stats snapshots the injection counters.
func (f *FaultFS) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Crashed reports whether the scheduled crash point has fired.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// checkRead gates read-class operations: they only fail once the
// filesystem has crashed (a dead process cannot read either).
func (f *FaultFS) checkRead() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	return nil
}

// writeOp advances the crash clock for one write-class operation and
// decides its fate: opCrash at the scheduled point, opInject drawn at
// rate, opOK to proceed. The rng is consulted only for configured
// (non-zero) rates, so runs that differ in unused knobs keep identical
// schedules. When the fate is opCrash or opInject on a write of n
// bytes, cut is the torn prefix to still apply — strictly inside the
// payload when it has at least two bytes, so a torn record is really
// torn, never empty-or-complete by accident.
func (f *FaultFS) writeOp(rate float64, n int) (fate opFate, cut int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return opCrash, 0
	}
	f.stats.Ops++
	if f.cfg.CrashAfterOps > 0 && f.stats.Ops >= f.cfg.CrashAfterOps {
		f.crashed = true
		f.stats.Crashed = true
		return opCrash, f.tornCutLocked(n)
	}
	if rate > 0 && f.rng.Float64() < rate {
		return opInject, f.tornCutLocked(n)
	}
	return opOK, 0
}

func (f *FaultFS) tornCutLocked(n int) int {
	if n < 2 {
		return 0
	}
	return 1 + f.rng.Intn(n-1)
}

// OpenFile implements FS.
func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if err := f.checkRead(); err != nil {
		return nil, err
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

// Rename implements FS.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	switch fate, _ := f.writeOp(f.cfg.RenameFailRate, 0); fate {
	case opCrash:
		return ErrCrashed
	case opInject:
		f.mu.Lock()
		f.stats.RenameFails++
		f.mu.Unlock()
		return errf("rename %s: %w", newpath, ErrInjected)
	}
	return f.inner.Rename(oldpath, newpath)
}

// Remove implements FS.
func (f *FaultFS) Remove(name string) error {
	if fate, _ := f.writeOp(0, 0); fate == opCrash {
		return ErrCrashed
	}
	return f.inner.Remove(name)
}

// MkdirAll implements FS.
func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	if err := f.checkRead(); err != nil {
		return err
	}
	return f.inner.MkdirAll(path, perm)
}

// ReadDir implements FS.
func (f *FaultFS) ReadDir(dir string) ([]string, error) {
	if err := f.checkRead(); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(dir)
}

// faultFile wraps an inner File with the injector's write-path faults.
type faultFile struct {
	fs    *FaultFS
	inner File
}

var _ File = (*faultFile)(nil)

func (h *faultFile) Read(p []byte) (int, error) {
	if err := h.fs.checkRead(); err != nil {
		return 0, err
	}
	return h.inner.Read(p)
}

func (h *faultFile) Seek(offset int64, whence int) (int64, error) {
	if err := h.fs.checkRead(); err != nil {
		return 0, err
	}
	return h.inner.Seek(offset, whence)
}

func (h *faultFile) Write(p []byte) (int, error) {
	switch fate, cut := h.fs.writeOp(h.fs.cfg.ShortWriteRate, len(p)); fate {
	case opCrash:
		// A crash mid-write applies a torn prefix, byte-granular, before
		// the "machine" dies — the case journal recovery must survive.
		if cut > 0 {
			n, _ := h.inner.Write(p[:cut])
			h.fs.mu.Lock()
			h.fs.stats.TornBytes += n
			h.fs.mu.Unlock()
		}
		return 0, ErrCrashed
	case opInject:
		if cut > 0 {
			_, _ = h.inner.Write(p[:cut])
		}
		h.fs.mu.Lock()
		h.fs.stats.ShortWrites++
		h.fs.mu.Unlock()
		return cut, errf("short write (%d of %d bytes): %w", cut, len(p), ErrInjected)
	}
	return h.inner.Write(p)
}

func (h *faultFile) Truncate(size int64) error {
	if fate, _ := h.fs.writeOp(0, 0); fate == opCrash {
		return ErrCrashed
	}
	return h.inner.Truncate(size)
}

func (h *faultFile) Sync() error {
	switch fate, _ := h.fs.writeOp(h.fs.cfg.SyncFailRate, 0); fate {
	case opCrash:
		return ErrCrashed
	case opInject:
		h.fs.mu.Lock()
		h.fs.stats.SyncFails++
		h.fs.mu.Unlock()
		return errf("sync failed: %w", ErrInjected)
	}
	return h.inner.Sync()
}

// Close always releases the inner handle, crashed or not — closing
// descriptors is the kernel's job even when the process is gone, and
// leaking them would fail the handle-hygiene tests for the wrong
// reason.
func (h *faultFile) Close() error {
	return h.inner.Close()
}
