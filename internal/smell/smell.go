// Package smell implements the Designite-style code-smell analysis of
// §VI-A: the two architecture smells and four design smells of
// Figure 8, computed from the structural code model of
// internal/codemodel. Architecture smells capture cross-component
// degradation; design smells capture class-level degradation.
package smell

import (
	"errors"
	"sort"

	"sdnbugs/internal/codemodel"
)

// Kind identifies one smell.
type Kind int

// Smell kinds (Figure 8).
const (
	KindUnknown Kind = iota
	// Architecture smells.
	GodComponent
	UnstableDependency
	// Design smells.
	InsufficientModularization
	BrokenHierarchy
	HubLikeModularization
	MissingHierarchy
)

// Kinds lists every analyzed smell.
func Kinds() []Kind {
	return []Kind{
		GodComponent, UnstableDependency,
		InsufficientModularization, BrokenHierarchy,
		HubLikeModularization, MissingHierarchy,
	}
}

func (k Kind) String() string {
	switch k {
	case GodComponent:
		return "god-component"
	case UnstableDependency:
		return "unstable-dependency"
	case InsufficientModularization:
		return "insufficient-modularization"
	case BrokenHierarchy:
		return "broken-hierarchy"
	case HubLikeModularization:
		return "hub-like-modularization"
	case MissingHierarchy:
		return "missing-hierarchy"
	default:
		return "unknown"
	}
}

// Architecture reports whether the smell is architecture-level (as
// opposed to design-level).
func (k Kind) Architecture() bool {
	return k == GodComponent || k == UnstableDependency
}

// Finding is one detected smell instance.
type Finding struct {
	Kind Kind
	// Subject is the offending package (architecture smells) or class
	// (design smells).
	Subject string
	// Detail is a human-readable explanation.
	Detail string
}

// Report is the analysis result for one codebase snapshot.
type Report struct {
	Version  string
	Findings []Finding
}

// Count returns the number of findings of the given kind.
func (r *Report) Count(k Kind) int {
	n := 0
	for _, f := range r.Findings {
		if f.Kind == k {
			n++
		}
	}
	return n
}

// Counts returns the per-kind finding counts.
func (r *Report) Counts() map[Kind]int {
	out := make(map[Kind]int, len(Kinds()))
	for _, k := range Kinds() {
		out[k] = r.Count(k)
	}
	return out
}

// ErrNilCodebase is returned for a nil input.
var ErrNilCodebase = errors.New("smell: nil codebase")

// Analyze computes every smell over the codebase.
func Analyze(cb *codemodel.Codebase) (*Report, error) {
	if cb == nil {
		return nil, ErrNilCodebase
	}
	r := &Report{Version: cb.Version}
	r.Findings = append(r.Findings, godComponents(cb)...)
	unstable, err := unstableDependencies(cb)
	if err != nil {
		return nil, err
	}
	r.Findings = append(r.Findings, unstable...)
	r.Findings = append(r.Findings, designSmells(cb)...)
	return r, nil
}

// godComponents flags packages whose size impairs modularity: class
// count above codemodel.GodComponentClasses or very large LOC.
func godComponents(cb *codemodel.Codebase) []Finding {
	var out []Finding
	for _, p := range cb.Packages() {
		if len(p.Classes) > codemodel.GodComponentClasses || p.LOC() > 27000 {
			out = append(out, Finding{
				Kind:    GodComponent,
				Subject: p.Name,
				Detail:  "oversized component impairs modularity",
			})
		}
	}
	return out
}

// unstableDependencies flags every dependency edge that violates the
// Stable Dependencies Principle: the depended-upon package is less
// stable (higher instability) than the depender.
func unstableDependencies(cb *codemodel.Codebase) ([]Finding, error) {
	var out []Finding
	instability := map[string]float64{}
	for _, p := range cb.Packages() {
		i, err := cb.Instability(p.Name)
		if err != nil {
			return nil, err
		}
		instability[p.Name] = i
	}
	for _, p := range cb.Packages() {
		for _, dep := range p.DependsOn {
			di, ok := instability[dep]
			if !ok {
				continue // dangling edge: not this smell's business
			}
			if di > instability[p.Name] {
				out = append(out, Finding{
					Kind:    UnstableDependency,
					Subject: p.Name,
					Detail:  "depends on less stable package " + dep,
				})
			}
		}
	}
	return out, nil
}

// designSmells computes the four class-level smells.
func designSmells(cb *codemodel.Codebase) []Finding {
	var out []Finding
	for _, c := range cb.Classes() {
		if len(c.Methods) > codemodel.InsufficientMethods || c.LOC() > 1000 {
			out = append(out, Finding{
				Kind:    InsufficientModularization,
				Subject: c.Package + "." + c.Name,
				Detail:  "class too large or complex to be one abstraction",
			})
		}
		if c.SuperType != "" && !c.UsesSuperFeatures {
			out = append(out, Finding{
				Kind:    BrokenHierarchy,
				Subject: c.Package + "." + c.Name,
				Detail:  "no IS-A relation with supertype " + c.SuperType,
			})
		}
		if c.FanIn > codemodel.HubFan && c.FanOut > codemodel.HubFan {
			out = append(out, Finding{
				Kind:    HubLikeModularization,
				Subject: c.Package + "." + c.Name,
				Detail:  "class is a dependency hub",
			})
		}
		if c.TypeSwitches > codemodel.MissingHierarchySwitches {
			out = append(out, Finding{
				Kind:    MissingHierarchy,
				Subject: c.Package + "." + c.Name,
				Detail:  "conditional type logic should be a hierarchy",
			})
		}
	}
	return out
}

// TrendPoint is one release's smell counts (a Figure 8 series point).
type TrendPoint struct {
	Version string
	Counts  map[Kind]int
	Classes int
	Commits int
}

// Trend analyzes a release train, producing the Figure 8 series.
func Trend(profiles []codemodel.ReleaseProfile, seed int64) ([]TrendPoint, error) {
	out := make([]TrendPoint, 0, len(profiles))
	for i, p := range profiles {
		cb := codemodel.Generate(p, seed+int64(i)*17)
		rep, err := Analyze(cb)
		if err != nil {
			return nil, err
		}
		out = append(out, TrendPoint{
			Version: p.Version,
			Counts:  rep.Counts(),
			Classes: cb.ClassCount(),
			Commits: p.Commits,
		})
	}
	return out, nil
}

// Subjects returns the sorted distinct subjects of the report's
// findings of one kind — convenient for inspection and tests.
func (r *Report) Subjects(k Kind) []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range r.Findings {
		if f.Kind == k && !seen[f.Subject] {
			seen[f.Subject] = true
			out = append(out, f.Subject)
		}
	}
	sort.Strings(out)
	return out
}
