package smell

import (
	"sdnbugs/internal/taxonomy"
)

// Refactoring is a recommended remediation for a smell finding. §VI-A
// correlates these with the taxonomy's fix classes (no logic change /
// add new logic / change existing logic): design smells are fixed by
// restructuring existing logic, while broken hierarchies need new
// logic (the paper's Run/ElectionOperation → AsyncLeaderElector
// example from ONOS-6594).
type Refactoring struct {
	Finding Finding
	// Technique names the classic refactoring.
	Technique string
	// FixClass is the taxonomy grouping the remediation falls into.
	FixClass taxonomy.FixClass
}

// remediations maps each smell kind to its standard refactoring and
// the fix class it corresponds to.
var remediations = map[Kind]struct {
	technique string
	class     taxonomy.FixClass
}{
	GodComponent:               {"decompose component into cohesive packages", taxonomy.ChangeExistingLogic},
	UnstableDependency:         {"invert dependency via an interface owned by the stable side", taxonomy.ChangeExistingLogic},
	InsufficientModularization: {"extract class / extract method", taxonomy.ChangeExistingLogic},
	BrokenHierarchy:            {"implement supertype contract or re-parent the subtype", taxonomy.AddNewLogic},
	HubLikeModularization:      {"split hub responsibilities behind facades", taxonomy.ChangeExistingLogic},
	MissingHierarchy:           {"replace conditional type logic with polymorphic hierarchy", taxonomy.AddNewLogic},
}

// Plan derives the remediation plan for a report's findings.
func Plan(r *Report) []Refactoring {
	out := make([]Refactoring, 0, len(r.Findings))
	for _, f := range r.Findings {
		rem, ok := remediations[f.Kind]
		if !ok {
			continue
		}
		out = append(out, Refactoring{Finding: f, Technique: rem.technique, FixClass: rem.class})
	}
	return out
}

// FixClassBreakdown aggregates a plan into the paper's three fix
// classes, returning the count of recommended remediations per class.
func FixClassBreakdown(plan []Refactoring) map[taxonomy.FixClass]int {
	out := map[taxonomy.FixClass]int{}
	for _, p := range plan {
		out[p.FixClass]++
	}
	return out
}
