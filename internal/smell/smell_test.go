package smell

import (
	"testing"

	"sdnbugs/internal/codemodel"
	"sdnbugs/internal/taxonomy"
)

func TestAnalyzeNil(t *testing.T) {
	if _, err := Analyze(nil); err != ErrNilCodebase {
		t.Errorf("want ErrNilCodebase, got %v", err)
	}
}

func TestHandBuiltSmells(t *testing.T) {
	cb := codemodel.NewCodebase("toy", "0.1")

	// A god component: > threshold classes.
	giant := cb.AddPackage("giant")
	for i := 0; i < codemodel.GodComponentClasses+1; i++ {
		giant.Classes = append(giant.Classes, &codemodel.Class{
			Name: "C", Package: "giant", UsesSuperFeatures: true,
			Methods: []codemodel.Method{{Name: "m", LOC: 10}},
		})
	}
	// A healthy package holding the smelly classes.
	pkg := cb.AddPackage("app")
	bloated := &codemodel.Class{Name: "Bloat", Package: "app", UsesSuperFeatures: true}
	for i := 0; i < codemodel.InsufficientMethods+1; i++ {
		bloated.Methods = append(bloated.Methods, codemodel.Method{Name: "m", LOC: 5})
	}
	broken := &codemodel.Class{
		Name: "Run", Package: "app", SuperType: "ElectionOperation",
		UsesSuperFeatures: false,
		Methods:           []codemodel.Method{{Name: "m", LOC: 5}},
	}
	hub := &codemodel.Class{
		Name: "Hub", Package: "app", UsesSuperFeatures: true,
		FanIn: codemodel.HubFan + 1, FanOut: codemodel.HubFan + 1,
		Methods: []codemodel.Method{{Name: "m", LOC: 5}},
	}
	dispatcher := &codemodel.Class{
		Name: "Dispatch", Package: "app", UsesSuperFeatures: true,
		TypeSwitches: codemodel.MissingHierarchySwitches + 1,
		Methods:      []codemodel.Method{{Name: "m", LOC: 5}},
	}
	pkg.Classes = append(pkg.Classes, bloated, broken, hub, dispatcher)

	// One unstable dependency: stable "base" (high afferent) depends on
	// volatile "leaf".
	base := cb.AddPackage("base")
	base.Classes = append(base.Classes, &codemodel.Class{Name: "B", Package: "base", UsesSuperFeatures: true})
	leaf := cb.AddPackage("leaf")
	leaf.Classes = append(leaf.Classes, &codemodel.Class{Name: "L", Package: "leaf", UsesSuperFeatures: true})
	giant.DependsOn = append(giant.DependsOn, "base")
	pkg.DependsOn = append(pkg.DependsOn, "base")
	leaf.DependsOn = append(leaf.DependsOn, "base") // leaf: Ce=1, Ca=1 -> I=0.5
	base.DependsOn = append(base.DependsOn, "leaf") // base: Ce=1, Ca=3 -> I=0.25

	rep, err := Analyze(cb)
	if err != nil {
		t.Fatal(err)
	}
	wants := map[Kind]int{
		GodComponent:               1,
		UnstableDependency:         1,
		InsufficientModularization: 1,
		BrokenHierarchy:            1,
		HubLikeModularization:      1,
		MissingHierarchy:           1,
	}
	for k, want := range wants {
		if got := rep.Count(k); got != want {
			t.Errorf("%v = %d, want %d (subjects: %v)", k, got, want, rep.Subjects(k))
		}
	}
	if subj := rep.Subjects(BrokenHierarchy); len(subj) != 1 || subj[0] != "app.Run" {
		t.Errorf("broken hierarchy subjects = %v", subj)
	}
}

func TestGeneratedProfileIsRecovered(t *testing.T) {
	// The analyzer must recover exactly the counts the generator was
	// asked to synthesize — the round-trip check for Figure 8.
	p := codemodel.ONOSReleases()[0]
	cb := codemodel.Generate(p, 5)
	rep, err := Analyze(cb)
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		kind Kind
		want int
	}{
		{GodComponent, p.GodComponents},
		{UnstableDependency, p.UnstableDeps},
		{InsufficientModularization, p.InsufficientlyModularized},
		{BrokenHierarchy, p.BrokenHierarchies},
		{HubLikeModularization, p.HubClasses},
		{MissingHierarchy, p.MissingHierarchies},
	}
	for _, c := range checks {
		if got := rep.Count(c.kind); got != c.want {
			t.Errorf("%v = %d, want %d", c.kind, got, c.want)
		}
	}
}

func TestTrendFigure8(t *testing.T) {
	pts, err := Trend(codemodel.ONOSReleases(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 8 {
		t.Fatalf("got %d trend points", len(pts))
	}
	first, last := pts[0], pts[len(pts)-1]

	// Commits decline across the train (Figure 10).
	if !(last.Commits < first.Commits) {
		t.Error("commits should decline across releases")
	}
	// God component stays roughly constant.
	if diff := last.Counts[GodComponent] - first.Counts[GodComponent]; diff < -2 || diff > 2 {
		t.Errorf("god component drifted by %d; should be ~constant", diff)
	}
	// Unstable dependencies decline steadily.
	for i := 1; i < len(pts); i++ {
		if pts[i].Counts[UnstableDependency] > pts[i-1].Counts[UnstableDependency] {
			t.Errorf("unstable deps rose at %s", pts[i].Version)
		}
	}
	// Design smells spike across 1.12–1.14 ...
	if !(pts[2].Counts[InsufficientModularization] > pts[0].Counts[InsufficientModularization]) {
		t.Error("insufficient modularization should spike by 1.14")
	}
	if !(pts[2].Counts[BrokenHierarchy] > pts[0].Counts[BrokenHierarchy]) {
		t.Error("broken hierarchy should spike by 1.14")
	}
	// ... then broken hierarchy recedes (ONOS-6594) while insufficient
	// modularization plateaus.
	if !(last.Counts[BrokenHierarchy] < pts[2].Counts[BrokenHierarchy]) {
		t.Error("broken hierarchy should recede after 1.14")
	}
	plateauDelta := last.Counts[InsufficientModularization] - pts[2].Counts[InsufficientModularization]
	if plateauDelta < -5 || plateauDelta > 5 {
		t.Errorf("insufficient modularization should plateau, drifted %d", plateauDelta)
	}
	// Total classes grow even though god-component count is flat — the
	// paper's "classes grow, modularity does not" observation.
	if !(last.Classes > first.Classes) {
		t.Error("class count should grow across releases")
	}
}

func TestIntentImplGrowth(t *testing.T) {
	// net.intent.impl: 49 classes at 1.12 -> 107 at 2.3 (§VI-A).
	rels := codemodel.ONOSReleases()
	firstCB := codemodel.Generate(rels[0], 1)
	lastCB := codemodel.Generate(rels[len(rels)-1], 1)
	fp, err := firstCB.Package("net.intent.impl")
	if err != nil {
		t.Fatal(err)
	}
	lp, err := lastCB.Package("net.intent.impl")
	if err != nil {
		t.Fatal(err)
	}
	if len(fp.Classes) != 49 || len(lp.Classes) != 107 {
		t.Errorf("intent.impl classes %d -> %d, want 49 -> 107", len(fp.Classes), len(lp.Classes))
	}
}

func TestKindClassification(t *testing.T) {
	if !GodComponent.Architecture() || !UnstableDependency.Architecture() {
		t.Error("architecture smells misclassified")
	}
	for _, k := range []Kind{InsufficientModularization, BrokenHierarchy, HubLikeModularization, MissingHierarchy} {
		if k.Architecture() {
			t.Errorf("%v is a design smell", k)
		}
	}
	for _, k := range Kinds() {
		if k.String() == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := codemodel.ONOSReleases()[3]
	a := codemodel.Generate(p, 9)
	b := codemodel.Generate(p, 9)
	if a.ClassCount() != b.ClassCount() {
		t.Error("same seed should give identical codebases")
	}
	ra, err := Analyze(a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Analyze(b)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range Kinds() {
		if ra.Count(k) != rb.Count(k) {
			t.Errorf("%v differs across same-seed runs", k)
		}
	}
}

func TestRefactoringPlan(t *testing.T) {
	p := codemodel.ONOSReleases()[0]
	cb := codemodel.Generate(p, 5)
	rep, err := Analyze(cb)
	if err != nil {
		t.Fatal(err)
	}
	plan := Plan(rep)
	if len(plan) != len(rep.Findings) {
		t.Fatalf("plan covers %d of %d findings", len(plan), len(rep.Findings))
	}
	for _, r := range plan {
		if r.Technique == "" {
			t.Fatalf("no technique for %v", r.Finding.Kind)
		}
		// §VI-A: smells are remedied by logic changes, never by
		// configuration-only fixes.
		if r.FixClass == taxonomy.NoLogicChange || r.FixClass == taxonomy.FixClassUnknown {
			t.Fatalf("%v mapped to %v", r.Finding.Kind, r.FixClass)
		}
	}
	breakdown := FixClassBreakdown(plan)
	// Broken hierarchies dominate the add-new-logic class at 1.12.
	if breakdown[taxonomy.AddNewLogic] < p.BrokenHierarchies {
		t.Errorf("add-new-logic remediations = %d, want >= %d",
			breakdown[taxonomy.AddNewLogic], p.BrokenHierarchies)
	}
	if breakdown[taxonomy.ChangeExistingLogic] == 0 {
		t.Error("change-existing-logic remediations missing")
	}
}
