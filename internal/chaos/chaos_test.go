package chaos

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// okHandler serves a fixed payload.
func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "the quick brown fox jumps over the lazy dog")
	})
}

// sequence runs n probes against a fresh chaos server with cfg.
func sequence(t *testing.T, cfg Config, n int) ([]string, Stats) {
	t.Helper()
	h := Wrap(okHandler(), cfg)
	srv := httptest.NewServer(h)
	defer srv.Close()
	// Fresh client per sequence so connection reuse (and Go's own
	// transparent retries on dead keep-alive conns) can't bleed state
	// between sequences.
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	var out []string
	for i := 0; i < n; i++ {
		resp, err := client.Get(srv.URL)
		if err != nil {
			out = append(out, "conn-error")
			continue
		}
		body, rerr := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if rerr != nil {
			out = append(out, fmt.Sprintf("%d/body-error", resp.StatusCode))
			continue
		}
		out = append(out, fmt.Sprintf("%d/%dB", resp.StatusCode, len(body)))
	}
	return out, h.Stats()
}

func TestDeterministicSchedule(t *testing.T) {
	cfg := Config{Seed: 42, Rate: 0.6, RetryAfter: time.Millisecond, Latency: time.Millisecond}
	a, statsA := sequence(t, cfg, 40)
	b, statsB := sequence(t, cfg, 40)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("same seed diverged:\n%v\n%v", a, b)
	}
	if statsA != statsB {
		t.Errorf("stats diverged: %+v vs %+v", statsA, statsB)
	}
	c, _ := sequence(t, Config{Seed: 43, Rate: 0.6, RetryAfter: time.Millisecond, Latency: time.Millisecond}, 40)
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Error("different seeds produced an identical schedule")
	}
}

func TestFaultMixAtFullRate(t *testing.T) {
	// Rate 1 with a high consecutive bound: nearly every request is
	// faulted, and over enough draws every kind appears.
	cfg := Config{Seed: 7, Rate: 1, RetryAfter: time.Millisecond,
		Latency: time.Millisecond, MaxConsecutive: 2}
	_, stats := sequence(t, cfg, 120)
	if stats.Requests != 120 {
		t.Fatalf("requests = %d, want 120", stats.Requests)
	}
	if stats.RateLimits == 0 || stats.ServerErrors == 0 || stats.Latencies == 0 ||
		stats.Truncations == 0 || stats.Drops == 0 {
		t.Errorf("some fault kind never fired: %+v", stats)
	}
	if stats.Faults() != stats.RateLimits+stats.ServerErrors+stats.Truncations+stats.Drops {
		t.Errorf("Faults() inconsistent with kind counts: %+v", stats)
	}
}

func TestForcedProgressBound(t *testing.T) {
	// At rate 1 every request wants a fault, but after MaxConsecutive
	// error faults the next request must be served cleanly — the
	// guarantee retrying clients build on.
	cfg := Config{Seed: 1, Rate: 1, RetryAfter: time.Millisecond,
		Latency: time.Millisecond, MaxConsecutive: 3}
	outcomes, _ := sequence(t, cfg, 60)
	streak := 0
	sawClean := false
	for _, o := range outcomes {
		// Both clean pass-throughs and latency spikes deliver the full
		// 200/43B response; anything else is an error fault.
		if o == "200/43B" {
			streak = 0
			sawClean = true
			continue
		}
		streak++
		if streak > 3 {
			t.Fatalf("%d consecutive error faults, bound is 3: %v", streak, outcomes)
		}
	}
	if !sawClean {
		t.Error("no request ever served cleanly at rate 1 — forced progress broken")
	}
}

func TestRateLimitCarriesRetryAfter(t *testing.T) {
	h := Wrap(okHandler(), Config{Seed: 3, Rate: 1, RetryAfter: 2 * time.Second})
	srv := httptest.NewServer(h)
	defer srv.Close()
	// Walk until the schedule produces a 429.
	for i := 0; i < 50; i++ {
		resp, err := http.Get(srv.URL)
		if err != nil {
			continue
		}
		code := resp.StatusCode
		ra := resp.Header.Get("Retry-After")
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		if code == http.StatusTooManyRequests {
			if ra != "2" {
				t.Errorf("Retry-After = %q, want \"2\"", ra)
			}
			return
		}
	}
	t.Fatal("no 429 injected in 50 requests at rate 1")
}

func TestTruncationDeliversPartialBody(t *testing.T) {
	h := Wrap(okHandler(), Config{Seed: 5, Rate: 1, RetryAfter: time.Millisecond,
		Latency: time.Millisecond})
	srv := httptest.NewServer(h)
	defer srv.Close()
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	for i := 0; i < 80; i++ {
		resp, err := client.Get(srv.URL)
		if err != nil {
			continue
		}
		body, rerr := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode == http.StatusOK && rerr != nil {
			if len(body) >= 43 {
				t.Errorf("truncated read returned %d bytes of 43", len(body))
			}
			return // got a mid-body failure, as designed
		}
	}
	t.Fatal("no truncation observed in 80 requests at rate 1")
}

func TestZeroConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Rate != DefaultRate || cfg.Latency != DefaultLatency ||
		cfg.BurstLen != DefaultBurstLen || cfg.MaxConsecutive != DefaultMaxConsecutive {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	if cfg.RetryAfter != time.Second {
		t.Errorf("RetryAfter default = %v, want 1s", cfg.RetryAfter)
	}
}

// TestLatencySpikeAbortsOnContextCancel pins the fix for the latency
// injector ignoring request cancellation: a spike must return as soon
// as the request's context is done, not sleep out the full delay.
func TestLatencySpikeAbortsOnContextCancel(t *testing.T) {
	h := Wrap(okHandler(), Config{Seed: 1, Rate: 1, Latency: 30 * time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: any spike must abort immediately
	start := time.Now()
	deadline := start.Add(5 * time.Second)
	for h.Stats().Latencies == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no latency spike drawn within the deadline")
		}
		func() {
			// Drop injections sever the connection via panic; swallow
			// them, the spike is what this test is after.
			defer func() { _ = recover() }()
			req := httptest.NewRequest(http.MethodGet, "/", nil).WithContext(ctx)
			h.ServeHTTP(httptest.NewRecorder(), req)
		}()
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled latency spike blocked for %v", elapsed)
	}
}
