// Package chaos is a deterministic, seed-driven fault-injection
// middleware for http.Handler — the SPIDER-style stateful fault and
// latency injection of PAPERS.md applied to this repo's own tracker
// simulators. Wrapping jirasim or ghsim in a chaos.Handler turns them
// into realistically flaky services: rate limits with Retry-After,
// bursts of 5xx, latency spikes, truncated response bodies, and
// dropped connections, all drawn from one seeded PRNG so a run is
// reproducible fault-for-fault.
//
// Determinism has one deliberate escape hatch: MaxConsecutive bounds
// how many error faults land back-to-back, so a client that retries at
// least MaxConsecutive+1 times is guaranteed to make progress. That is
// what lets the E21 experiment assert byte-identical mining results
// under chaos — the injected faults change the schedule, never the
// data.
package chaos

import (
	"bytes"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Defaults applied by Config.withDefaults.
const (
	DefaultRate           = 0.25
	DefaultLatency        = 20 * time.Millisecond
	DefaultBurstLen       = 2
	DefaultMaxConsecutive = 3
)

// Config tunes a chaos Handler. The zero value injects at the default
// rate with the default fault mix.
type Config struct {
	// Seed drives every injection decision; equal seeds and request
	// sequences produce identical fault schedules.
	Seed int64
	// Rate is the per-request fault probability in [0,1]
	// (default 0.25).
	Rate float64
	// RetryAfter is the wait advertised on injected 429s, truncated to
	// whole seconds on the wire (default 1s; 0 advertises "0").
	RetryAfter time.Duration
	// Latency is the upper bound of an injected latency spike
	// (default 20ms). Spikes delay the response but serve it intact.
	Latency time.Duration
	// BurstLen is the maximum number of extra 5xx responses following
	// an injected server error (default 2) — trackers rarely fail
	// exactly once.
	BurstLen int
	// MaxConsecutive bounds back-to-back error faults: after this many,
	// the next request is served cleanly (default 3). It is the
	// progress guarantee retrying clients rely on.
	MaxConsecutive int
}

func (c Config) withDefaults() Config {
	if c.Rate <= 0 {
		c.Rate = DefaultRate
	}
	if c.Rate > 1 {
		c.Rate = 1
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Latency <= 0 {
		c.Latency = DefaultLatency
	}
	if c.BurstLen <= 0 {
		c.BurstLen = DefaultBurstLen
	}
	if c.MaxConsecutive <= 0 {
		c.MaxConsecutive = DefaultMaxConsecutive
	}
	return c
}

// Stats counts what a Handler injected.
type Stats struct {
	// Requests counts every request seen; Injected counts those that
	// received any injection (including latency spikes).
	Requests, Injected uint64
	// Per-kind injection counts. Faults = RateLimits + ServerErrors +
	// Truncations + Drops (the error-class injections).
	RateLimits, ServerErrors, Latencies, Truncations, Drops uint64
}

// Faults sums the error-class injections (everything but latency).
func (s Stats) Faults() uint64 {
	return s.RateLimits + s.ServerErrors + s.Truncations + s.Drops
}

// faultKind enumerates the injections.
type faultKind int

const (
	passThrough faultKind = iota
	faultLatency
	faultRateLimit
	faultServerError
	faultTruncate
	faultDrop
)

// Handler injects faults in front of next. Safe for concurrent use;
// decisions are serialized so a fixed request order yields a fixed
// fault schedule.
type Handler struct {
	next http.Handler
	cfg  Config

	mu          sync.Mutex
	rng         *rand.Rand
	burst       int // remaining 5xx responses in the current burst
	consecutive int // error faults injected back-to-back
	stats       Stats
}

var _ http.Handler = (*Handler)(nil)

// Wrap builds a chaos Handler injecting faults in front of next.
func Wrap(next http.Handler, cfg Config) *Handler {
	cfg = cfg.withDefaults()
	return &Handler{next: next, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Stats snapshots the injection counters.
func (h *Handler) Stats() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stats
}

// decide draws the next injection from the seeded PRNG.
func (h *Handler) decide() (faultKind, time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.stats.Requests++

	// Forced progress: after MaxConsecutive error faults the request
	// goes through untouched, whatever the dice say.
	if h.consecutive >= h.cfg.MaxConsecutive {
		h.burst = 0
		h.consecutive = 0
		return passThrough, 0
	}
	// An in-progress 5xx burst continues without consulting the rate.
	if h.burst > 0 {
		h.burst--
		h.consecutive++
		h.stats.Injected++
		h.stats.ServerErrors++
		return faultServerError, 0
	}
	if h.rng.Float64() >= h.cfg.Rate {
		h.consecutive = 0
		return passThrough, 0
	}
	h.stats.Injected++
	switch faultKind(h.rng.Intn(5) + 1) {
	case faultLatency:
		// A latency spike serves the response intact, so it does not
		// count against the consecutive-fault progress bound.
		h.consecutive = 0
		h.stats.Latencies++
		spike := h.cfg.Latency/2 + time.Duration(h.rng.Int63n(int64(h.cfg.Latency/2)+1))
		return faultLatency, spike
	case faultRateLimit:
		h.consecutive++
		h.stats.RateLimits++
		return faultRateLimit, 0
	case faultServerError:
		h.consecutive++
		h.burst = h.rng.Intn(h.cfg.BurstLen + 1)
		h.stats.ServerErrors++
		return faultServerError, 0
	case faultTruncate:
		h.consecutive++
		h.stats.Truncations++
		return faultTruncate, 0
	default:
		h.consecutive++
		h.stats.Drops++
		return faultDrop, 0
	}
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	kind, spike := h.decide()
	switch kind {
	case faultLatency:
		t := time.NewTimer(spike)
		defer t.Stop()
		select {
		case <-t.C:
		case <-r.Context().Done():
			return
		}
		h.next.ServeHTTP(w, r)
	case faultRateLimit:
		w.Header().Set("Retry-After", strconv.Itoa(int(h.cfg.RetryAfter/time.Second)))
		http.Error(w, "chaos: injected rate limit", http.StatusTooManyRequests)
	case faultServerError:
		http.Error(w, "chaos: injected server error", http.StatusServiceUnavailable)
	case faultTruncate:
		h.truncate(w, r)
	case faultDrop:
		// ErrAbortHandler makes net/http sever the connection without
		// logging a stack — the client sees a mid-flight disconnect.
		panic(http.ErrAbortHandler)
	default:
		h.next.ServeHTTP(w, r)
	}
}

// truncate serves the real response's header with its full
// Content-Length but only half the body, then severs the connection,
// so the client fails mid-read with an unexpected EOF.
func (h *Handler) truncate(w http.ResponseWriter, r *http.Request) {
	rec := &recorder{header: make(http.Header), code: http.StatusOK}
	h.next.ServeHTTP(rec, r)
	body := rec.buf.Bytes()
	if len(body) < 2 {
		// Nothing worth cutting in half: drop the connection instead.
		panic(http.ErrAbortHandler)
	}
	for k, vs := range rec.header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(rec.code)
	_, _ = w.Write(body[:len(body)/2])
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
	panic(http.ErrAbortHandler)
}

// recorder buffers a downstream response so truncate can replay a
// prefix of it.
type recorder struct {
	header http.Header
	code   int
	buf    bytes.Buffer
}

var _ http.ResponseWriter = (*recorder)(nil)

func (r *recorder) Header() http.Header         { return r.header }
func (r *recorder) WriteHeader(code int)        { r.code = code }
func (r *recorder) Write(b []byte) (int, error) { return r.buf.Write(b) }
