// Package stats provides the statistical primitives the study engine
// uses to reproduce the paper's figures: empirical CDFs (Figure 7 and
// Figure 12), histograms, percentiles, and association measures between
// categorical bug labels (phi coefficient and lift).
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned for operations that need at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// ECDF is an empirical cumulative distribution function over a sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from the sample (copied, then sorted).
func NewECDF(sample []float64) (*ECDF, error) {
	if len(sample) == 0 {
		return nil, ErrEmpty
	}
	s := make([]float64, len(sample))
	copy(s, sample)
	sort.Float64s(s)
	return &ECDF{sorted: s}, nil
}

// At returns P(X <= x) under the empirical distribution.
func (e *ECDF) At(x float64) float64 {
	// First index with sorted[i] > x.
	i := sort.Search(len(e.sorted), func(i int) bool { return e.sorted[i] > x })
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the smallest sample value v with At(v) >= p.
// p is clamped to [0, 1].
func (e *ECDF) Quantile(p float64) float64 {
	if p <= 0 {
		return e.sorted[0]
	}
	if p >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	idx := int(math.Ceil(p*float64(len(e.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return e.sorted[idx]
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// Min returns the smallest sample value.
func (e *ECDF) Min() float64 { return e.sorted[0] }

// Max returns the largest sample value.
func (e *ECDF) Max() float64 { return e.sorted[len(e.sorted)-1] }

// Points returns up to n evenly spaced (x, P(X<=x)) points suitable for
// plotting the CDF curve. The last point is always (max, 1).
func (e *ECDF) Points(n int) []Point {
	if n < 2 {
		n = 2
	}
	lo, hi := e.Min(), e.Max()
	out := make([]Point, 0, n)
	if lo == hi {
		return []Point{{X: lo, Y: 1}}
	}
	step := (hi - lo) / float64(n-1)
	for i := 0; i < n; i++ {
		x := lo + float64(i)*step
		out = append(out, Point{X: x, Y: e.At(x)})
	}
	return out
}

// Point is a single (x, y) coordinate of a plotted series.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Percentile returns the p-th percentile (0..100) of the sample using
// the nearest-rank method.
func Percentile(sample []float64, p float64) (float64, error) {
	e, err := NewECDF(sample)
	if err != nil {
		return 0, err
	}
	return e.Quantile(p / 100), nil
}

// Histogram counts sample values into nbins equal-width bins spanning
// [min, max]. Values equal to max land in the last bin.
type Histogram struct {
	Min, Max float64
	Counts   []int
}

// NewHistogram builds a histogram with nbins bins.
func NewHistogram(sample []float64, nbins int) (*Histogram, error) {
	if len(sample) == 0 {
		return nil, ErrEmpty
	}
	if nbins < 1 {
		return nil, fmt.Errorf("stats: nbins must be >= 1, got %d", nbins)
	}
	lo, hi := sample[0], sample[0]
	for _, v := range sample {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	h := &Histogram{Min: lo, Max: hi, Counts: make([]int, nbins)}
	width := (hi - lo) / float64(nbins)
	for _, v := range sample {
		var idx int
		if width > 0 {
			idx = int((v - lo) / width)
		}
		if idx >= nbins {
			idx = nbins - 1
		}
		h.Counts[idx]++
	}
	return h, nil
}

// Total returns the number of samples counted.
func (h *Histogram) Total() int {
	var n int
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// PhiCoefficient measures association between two binary indicators
// from their 2x2 contingency counts:
//
//	        b=1   b=0
//	a=1     n11   n10
//	a=0     n01   n00
//
// It returns a value in [-1, 1]; 0 when any marginal is empty.
func PhiCoefficient(n11, n10, n01, n00 int) float64 {
	r1 := float64(n11 + n10)
	r0 := float64(n01 + n00)
	c1 := float64(n11 + n01)
	c0 := float64(n10 + n00)
	den := math.Sqrt(r1 * r0 * c1 * c0)
	if den == 0 {
		return 0
	}
	return (float64(n11)*float64(n00) - float64(n10)*float64(n01)) / den
}

// Lift returns P(a ∧ b) / (P(a)·P(b)) over n observations, the classic
// association-rule lift. It returns 0 when either marginal is empty.
func Lift(n11, nA, nB, n int) float64 {
	if nA == 0 || nB == 0 || n == 0 {
		return 0
	}
	pAB := float64(n11) / float64(n)
	pA := float64(nA) / float64(n)
	pB := float64(nB) / float64(n)
	return pAB / (pA * pB)
}

// PearsonCorrelation returns the sample Pearson correlation of paired
// observations x and y, or an error on mismatched/empty input.
func PearsonCorrelation(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("stats: paired samples differ in length: %d vs %d", len(x), len(y))
	}
	if len(x) < 2 {
		return 0, ErrEmpty
	}
	mx, my := mean(x), mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

func mean(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Summary holds the five-number summary plus mean of a sample.
type Summary struct {
	N                  int
	Min, P25, Median   float64
	P75, P90, P99, Max float64
	Mean               float64
}

// Summarize computes a Summary of the sample.
func Summarize(sample []float64) (Summary, error) {
	e, err := NewECDF(sample)
	if err != nil {
		return Summary{}, err
	}
	return Summary{
		N:      e.N(),
		Min:    e.Min(),
		P25:    e.Quantile(0.25),
		Median: e.Quantile(0.50),
		P75:    e.Quantile(0.75),
		P90:    e.Quantile(0.90),
		P99:    e.Quantile(0.99),
		Max:    e.Max(),
		Mean:   mean(sample),
	}, nil
}
