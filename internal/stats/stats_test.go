package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewECDFEmpty(t *testing.T) {
	if _, err := NewECDF(nil); err == nil {
		t.Fatal("want ErrEmpty")
	}
}

func TestECDFAt(t *testing.T) {
	e, err := NewECDF([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		x    float64
		want float64
	}{
		{0, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {10, 1},
	}
	for _, tt := range tests {
		if got := e.At(tt.x); got != tt.want {
			t.Errorf("At(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestECDFQuantile(t *testing.T) {
	e, _ := NewECDF([]float64{10, 20, 30, 40})
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {0.25, 10}, {0.5, 20}, {0.75, 30}, {1, 40}, {-1, 10}, {2, 40},
	}
	for _, tt := range tests {
		if got := e.Quantile(tt.p); got != tt.want {
			t.Errorf("Quantile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestECDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64, probes []float64) bool {
		if len(raw) == 0 {
			return true
		}
		sample := make([]float64, len(raw))
		for i, v := range raw {
			sample[i] = math.Mod(v, 1e9)
		}
		e, err := NewECDF(sample)
		if err != nil {
			return false
		}
		ps := make([]float64, len(probes))
		for i, v := range probes {
			ps[i] = math.Mod(v, 1e9)
		}
		sort.Float64s(ps)
		prev := -1.0
		for _, x := range ps {
			y := e.At(x)
			if y < prev || y < 0 || y > 1 {
				return false
			}
			prev = y
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestECDFPoints(t *testing.T) {
	e, _ := NewECDF([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	pts := e.Points(11)
	if len(pts) != 11 {
		t.Fatalf("len = %d", len(pts))
	}
	if pts[len(pts)-1].Y != 1 {
		t.Errorf("last point Y = %v, want 1", pts[len(pts)-1].Y)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Y < pts[i-1].Y {
			t.Error("points not monotone")
		}
	}
	// Constant sample collapses to one point.
	c, _ := NewECDF([]float64{5, 5, 5})
	if got := c.Points(10); len(got) != 1 || got[0].Y != 1 {
		t.Errorf("constant-sample points = %v", got)
	}
}

func TestPercentile(t *testing.T) {
	v := []float64{15, 20, 35, 40, 50}
	got, err := Percentile(v, 40)
	if err != nil {
		t.Fatal(err)
	}
	if got != 20 {
		t.Errorf("P40 = %v, want 20", got)
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("want error for empty sample")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 10}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != 10 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Min != 0 || h.Max != 10 {
		t.Errorf("range [%v,%v]", h.Min, h.Max)
	}
	// Max value must land in last bin, not overflow.
	if h.Counts[4] == 0 {
		t.Error("max value not counted in last bin")
	}
	if _, err := NewHistogram([]float64{1}, 0); err == nil {
		t.Error("want error for nbins=0")
	}
	if _, err := NewHistogram(nil, 3); err == nil {
		t.Error("want error for empty sample")
	}
	// Constant sample: all mass in one bin.
	ch, _ := NewHistogram([]float64{2, 2, 2}, 4)
	if ch.Counts[0] != 3 {
		t.Errorf("constant sample counts = %v", ch.Counts)
	}
}

func TestHistogramTotalProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		sample := make([]float64, len(raw))
		for i, v := range raw {
			sample[i] = math.Mod(v, 1e9)
		}
		h, err := NewHistogram(sample, 7)
		return err == nil && h.Total() == len(sample)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPhiCoefficient(t *testing.T) {
	tests := []struct {
		name               string
		n11, n10, n01, n00 int
		want               float64
	}{
		{"perfect-positive", 10, 0, 0, 10, 1},
		{"perfect-negative", 0, 10, 10, 0, -1},
		{"independent", 25, 25, 25, 25, 0},
		{"empty-marginal", 0, 0, 5, 5, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := PhiCoefficient(tt.n11, tt.n10, tt.n01, tt.n00)
			if math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("phi = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestPhiBoundedProperty(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		phi := PhiCoefficient(int(a), int(b), int(c), int(d))
		return phi >= -1-1e-9 && phi <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLift(t *testing.T) {
	// a and b always co-occur in half the data: lift = 0.5/(0.5*0.5) = 2.
	if got := Lift(50, 50, 50, 100); math.Abs(got-2) > 1e-12 {
		t.Errorf("lift = %v, want 2", got)
	}
	// Independent: lift = 1.
	if got := Lift(25, 50, 50, 100); math.Abs(got-1) > 1e-12 {
		t.Errorf("lift = %v, want 1", got)
	}
	if Lift(0, 0, 10, 100) != 0 || Lift(0, 10, 10, 0) != 0 {
		t.Error("degenerate lift should be 0")
	}
}

func TestPearsonCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	got, err := PearsonCorrelation(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("r = %v, want 1", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	got, _ = PearsonCorrelation(x, neg)
	if math.Abs(got+1) > 1e-12 {
		t.Errorf("r = %v, want -1", got)
	}
	if _, err := PearsonCorrelation(x, x[:2]); err == nil {
		t.Error("want mismatch error")
	}
	if _, err := PearsonCorrelation([]float64{1}, []float64{1}); err == nil {
		t.Error("want error for n<2")
	}
	// Constant series has no defined correlation; we return 0.
	r, err := PearsonCorrelation([]float64{1, 1, 1}, []float64{1, 2, 3})
	if err != nil || r != 0 {
		t.Errorf("constant series r = %v err = %v", r, err)
	}
}

func TestSummarize(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sample := make([]float64, 1000)
	for i := range sample {
		sample[i] = rng.Float64() * 100
	}
	s, err := Summarize(sample)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 1000 {
		t.Errorf("N = %d", s.N)
	}
	if !(s.Min <= s.P25 && s.P25 <= s.Median && s.Median <= s.P75 && s.P75 <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.Max) {
		t.Errorf("summary not ordered: %+v", s)
	}
	if math.Abs(s.Median-50) > 10 {
		t.Errorf("median = %v, expected near 50", s.Median)
	}
	if _, err := Summarize(nil); err == nil {
		t.Error("want error for empty")
	}
}
