package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape = %dx%d", m.Rows(), m.Cols())
	}
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Errorf("At(1,2) = %v, want 5", m.At(1, 2))
	}
	row := m.Row(1)
	row[0] = 9 // Row is a view.
	if m.At(1, 0) != 9 {
		t.Error("Row should be a mutable view")
	}
	col := m.Col(0)
	if col[1] != 9 {
		t.Errorf("Col(0) = %v", col)
	}
	col[1] = 100 // Col is a copy.
	if m.At(1, 0) != 9 {
		t.Error("Col should be a copy")
	}
}

func TestMatrixFromRows(t *testing.T) {
	m, err := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 {
		t.Errorf("At(1,0) = %v", m.At(1, 0))
	}
	if _, err := MatrixFromRows([][]float64{{1}, {1, 2}}); err == nil {
		t.Error("want error for ragged rows")
	}
	empty, err := MatrixFromRows(nil)
	if err != nil || empty.Rows() != 0 {
		t.Errorf("empty: %v %v", empty, err)
	}
}

func TestMatrixOutOfRangePanics(t *testing.T) {
	m := NewMatrix(2, 2)
	for _, f := range []func(){
		func() { m.At(2, 0) },
		func() { m.Set(0, 2, 1) },
		func() { m.Row(-1) },
		func() { m.Col(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestTranspose(t *testing.T) {
	m, _ := MatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	mt := m.T()
	if mt.Rows() != 3 || mt.Cols() != 2 {
		t.Fatalf("transpose shape %dx%d", mt.Rows(), mt.Cols())
	}
	if mt.At(2, 1) != 6 || mt.At(0, 1) != 4 {
		t.Error("transpose values wrong")
	}
	back := mt.T()
	if !Equal(m, back, 0) {
		t.Error("double transpose should be identity")
	}
}

func TestMul(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := MatrixFromRows([][]float64{{5, 6}, {7, 8}})
	c, err := Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := MatrixFromRows([][]float64{{19, 22}, {43, 50}})
	if !Equal(c, want, 1e-12) {
		t.Errorf("Mul result wrong: %+v", c)
	}
	if _, err := Mul(a, NewMatrix(3, 2)); err == nil {
		t.Error("want dimension error")
	}
}

func TestMulIdentityProperty(t *testing.T) {
	f := func(vals [9]float64) bool {
		a := NewMatrix(3, 3)
		id := NewMatrix(3, 3)
		for i := 0; i < 3; i++ {
			id.Set(i, i, 1)
			for j := 0; j < 3; j++ {
				a.Set(i, j, math.Mod(vals[i*3+j], 1e6))
			}
		}
		left, _ := Mul(id, a)
		right, _ := Mul(a, id)
		return Equal(left, a, 1e-9) && Equal(right, a, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulVec(t *testing.T) {
	m, _ := MatrixFromRows([][]float64{{1, 0}, {0, 2}})
	v, err := m.MulVec([]float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 3 || v[1] != 8 {
		t.Errorf("MulVec = %v", v)
	}
	if _, err := m.MulVec([]float64{1}); err == nil {
		t.Error("want dimension error")
	}
}

func TestApplyAndFrobenius(t *testing.T) {
	m, _ := MatrixFromRows([][]float64{{3, 0}, {0, 4}})
	if got := m.FrobeniusNorm(); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Frobenius = %v, want 5", got)
	}
	m.Apply(func(v float64) float64 { return v * 2 })
	if m.At(0, 0) != 6 {
		t.Error("Apply did not modify in place")
	}
}

func TestCovarianceMatrix(t *testing.T) {
	// Two perfectly correlated columns.
	x, _ := MatrixFromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	cov, err := CovarianceMatrix(x)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(cov.At(0, 0), 1, 1e-12) {
		t.Errorf("var(x0) = %v, want 1", cov.At(0, 0))
	}
	if !almostEqual(cov.At(1, 1), 4, 1e-12) {
		t.Errorf("var(x1) = %v, want 4", cov.At(1, 1))
	}
	if !almostEqual(cov.At(0, 1), 2, 1e-12) || !almostEqual(cov.At(1, 0), 2, 1e-12) {
		t.Errorf("cov = %v/%v, want 2", cov.At(0, 1), cov.At(1, 0))
	}
	if _, err := CovarianceMatrix(NewMatrix(1, 2)); err == nil {
		t.Error("want error for single observation")
	}
}

func TestCovarianceSymmetricProperty(t *testing.T) {
	f := func(vals [12]float64) bool {
		x := NewMatrix(4, 3)
		for i := 0; i < 4; i++ {
			for j := 0; j < 3; j++ {
				x.Set(i, j, math.Mod(vals[i*3+j], 1e4))
			}
		}
		cov, err := CovarianceMatrix(x)
		if err != nil {
			return false
		}
		for a := 0; a < 3; a++ {
			if cov.At(a, a) < -1e-9 {
				return false // variance must be non-negative
			}
			for b := 0; b < 3; b++ {
				if math.Abs(cov.At(a, b)-cov.At(b, a)) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClone(t *testing.T) {
	m, _ := MatrixFromRows([][]float64{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Error("Clone should not share data")
	}
}
