package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDot(t *testing.T) {
	tests := []struct {
		name string
		a, b []float64
		want float64
	}{
		{"empty", nil, nil, 0},
		{"ones", []float64{1, 1, 1}, []float64{1, 1, 1}, 3},
		{"orthogonal", []float64{1, 0}, []float64{0, 1}, 0},
		{"negative", []float64{1, -2, 3}, []float64{4, 5, -6}, 4 - 10 - 18},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Dot(tt.a, tt.b); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Dot(%v,%v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestDotChecked(t *testing.T) {
	if _, err := DotChecked([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("want error on mismatch")
	}
	got, err := DotChecked([]float64{2, 3}, []float64{4, 5})
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if got != 23 {
		t.Errorf("got %v, want 23", got)
	}
}

func TestNorms(t *testing.T) {
	v := []float64{3, -4}
	if got := Norm2(v); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Norm2 = %v, want 5", got)
	}
	if got := Norm1(v); !almostEqual(got, 7, 1e-12) {
		t.Errorf("Norm1 = %v, want 7", got)
	}
}

func TestNormalize(t *testing.T) {
	v := Normalize([]float64{3, 4})
	if !almostEqual(Norm2(v), 1, 1e-12) {
		t.Errorf("normalized norm = %v, want 1", Norm2(v))
	}
	zero := Normalize([]float64{0, 0})
	if zero[0] != 0 || zero[1] != 0 {
		t.Errorf("zero vector changed: %v", zero)
	}
}

func TestNormalizeUnitNormProperty(t *testing.T) {
	f := func(raw []float64) bool {
		v := make([]float64, len(raw))
		for i, x := range raw {
			// Clamp to avoid overflow when squaring quick's extreme values.
			v[i] = math.Mod(x, 1e6)
		}
		n := Norm2(Clone(v))
		got := Norm2(Normalize(v))
		if n == 0 {
			return got == 0
		}
		return almostEqual(got, 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAxpyAddSub(t *testing.T) {
	x := []float64{1, 2}
	y := []float64{10, 20}
	Axpy(2, x, y)
	if y[0] != 12 || y[1] != 24 {
		t.Errorf("Axpy result %v, want [12 24]", y)
	}
	s := Add([]float64{1, 2}, []float64{3, 4})
	if s[0] != 4 || s[1] != 6 {
		t.Errorf("Add = %v", s)
	}
	d := Sub([]float64{1, 2}, []float64{3, 4})
	if d[0] != -2 || d[1] != -2 {
		t.Errorf("Sub = %v", d)
	}
}

func TestCosineSimilarity(t *testing.T) {
	tests := []struct {
		name string
		a, b []float64
		want float64
	}{
		{"identical", []float64{1, 2}, []float64{1, 2}, 1},
		{"opposite", []float64{1, 0}, []float64{-1, 0}, -1},
		{"orthogonal", []float64{1, 0}, []float64{0, 1}, 0},
		{"zero", []float64{0, 0}, []float64{1, 1}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := CosineSimilarity(tt.a, tt.b); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("got %v, want %v", got, tt.want)
			}
		})
	}
}

func TestCosineSimilarityBounded(t *testing.T) {
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		av, bv := make([]float64, n), make([]float64, n)
		for i := 0; i < n; i++ {
			av[i] = math.Mod(a[i], 1e6)
			bv[i] = math.Mod(b[i], 1e6)
		}
		c := CosineSimilarity(av, bv)
		return c >= -1-1e-9 && c <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanVarianceStdDev(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(v); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Variance(v); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(v); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("degenerate inputs should return 0")
	}
}

func TestArgMaxArgMin(t *testing.T) {
	tests := []struct {
		name     string
		v        []float64
		max, min int
	}{
		{"empty", nil, -1, -1},
		{"single", []float64{5}, 0, 0},
		{"basic", []float64{1, 5, 3}, 1, 0},
		{"ties-lowest-index", []float64{2, 2, 1, 1}, 0, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ArgMax(tt.v); got != tt.max {
				t.Errorf("ArgMax = %d, want %d", got, tt.max)
			}
			if got := ArgMin(tt.v); got != tt.min {
				t.Errorf("ArgMin = %d, want %d", got, tt.min)
			}
		})
	}
}

func TestAllFinite(t *testing.T) {
	if !AllFinite([]float64{1, 2, 3}) {
		t.Error("finite vector reported non-finite")
	}
	if AllFinite([]float64{1, math.NaN()}) {
		t.Error("NaN not detected")
	}
	if AllFinite([]float64{math.Inf(1)}) {
		t.Error("Inf not detected")
	}
}

func TestScaleAndFill(t *testing.T) {
	v := []float64{1, 2}
	Scale(v, 3)
	if v[0] != 3 || v[1] != 6 {
		t.Errorf("Scale = %v", v)
	}
	Fill(v, 7)
	if v[0] != 7 || v[1] != 7 {
		t.Errorf("Fill = %v", v)
	}
}
