// Package mathx provides the small dense linear-algebra kernel that the
// NLP and machine-learning packages build on. It is deliberately minimal:
// dense vectors and matrices backed by []float64, with the handful of
// operations (dot products, norms, axpy, matrix multiply) that TF-IDF,
// NMF, Word2Vec, PCA, and the classifiers need.
//
// All operations are deterministic and allocate only when documented.
package mathx

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimensionMismatch is returned when operands have incompatible shapes.
var ErrDimensionMismatch = errors.New("mathx: dimension mismatch")

// Dot returns the inner product of a and b.
// It panics if the lengths differ; use DotChecked when lengths are not
// statically known to agree.
//
// The sum is accumulated in four fixed lanes combined in a fixed
// order, which breaks the floating-point add latency chain that
// otherwise bounds throughput. The lane layout is part of the
// function's contract: every call with the same inputs returns the
// same bits, on every platform and at every call site.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mathx: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	b = b[:len(a)]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	var s float64
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return ((s0 + s1) + (s2 + s3)) + s
}

// DotChecked returns the inner product of a and b, or
// ErrDimensionMismatch when the lengths differ.
func DotChecked(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrDimensionMismatch, len(a), len(b))
	}
	return Dot(a, b), nil
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	return math.Sqrt(Dot(v, v))
}

// Norm1 returns the L1 norm of v.
func Norm1(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// Scale multiplies every element of v by c in place and returns v.
func Scale(v []float64, c float64) []float64 {
	for i := range v {
		v[i] *= c
	}
	return v
}

// Axpy computes y += a*x in place. It panics on length mismatch.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mathx: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// Add returns a new vector a+b. It panics on length mismatch.
func Add(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mathx: Add length mismatch %d vs %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// SubInto computes dst = a-b in place (dst may alias a or b) and
// returns dst. It panics on length mismatch. This is the
// allocation-free form of Sub for hot loops.
func SubInto(dst, a, b []float64) []float64 {
	if len(a) != len(b) || len(dst) != len(a) {
		panic(fmt.Sprintf("mathx: SubInto length mismatch %d/%d/%d", len(dst), len(a), len(b)))
	}
	for i := range a {
		dst[i] = a[i] - b[i]
	}
	return dst
}

// Sub returns a new vector a-b. It panics on length mismatch.
func Sub(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mathx: Sub length mismatch %d vs %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// Normalize scales v in place to unit Euclidean length and returns v.
// A zero vector is returned unchanged.
func Normalize(v []float64) []float64 {
	n := Norm2(v)
	if n == 0 {
		return v
	}
	return Scale(v, 1/n)
}

// CosineSimilarity returns the cosine of the angle between a and b,
// or 0 when either vector is zero.
func CosineSimilarity(a, b []float64) float64 {
	na, nb := Norm2(a), Norm2(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// Clone returns a copy of v.
func Clone(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// Fill sets every element of v to c.
func Fill(v []float64, c float64) {
	for i := range v {
		v[i] = c
	}
}

// Mean returns the arithmetic mean of v, or 0 for an empty slice.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Variance returns the population variance of v, or 0 when len(v) < 2.
func Variance(v []float64) float64 {
	if len(v) < 2 {
		return 0
	}
	m := Mean(v)
	var s float64
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return s / float64(len(v))
}

// StdDev returns the population standard deviation of v.
func StdDev(v []float64) float64 {
	return math.Sqrt(Variance(v))
}

// ArgMax returns the index of the largest element of v, or -1 for an
// empty slice. Ties resolve to the lowest index.
func ArgMax(v []float64) int {
	if len(v) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// ArgMin returns the index of the smallest element of v, or -1 for an
// empty slice. Ties resolve to the lowest index.
func ArgMin(v []float64) int {
	if len(v) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] < v[best] {
			best = i
		}
	}
	return best
}

// AllFinite reports whether every element of v is finite (no NaN/Inf).
func AllFinite(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}
