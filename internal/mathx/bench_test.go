package mathx

import (
	"math/rand"
	"testing"
)

// The vector kernels below sit on E09's critical path: power-iteration
// PCA spends nearly all its time in Dot (via MulVec on a ~440×440
// covariance matrix), so these benches guard both speed and the
// zero-allocation property of the *Into variants.

func benchVec(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func BenchmarkDot440(b *testing.B) {
	x, y := benchVec(440, 1), benchVec(440, 2)
	b.ReportAllocs()
	var s float64
	for i := 0; i < b.N; i++ {
		s += Dot(x, y)
	}
	_ = s
}

func BenchmarkMulVecInto440(b *testing.B) {
	m := NewMatrix(440, 440)
	for r := 0; r < 440; r++ {
		copy(m.Row(r), benchVec(440, int64(3+r)))
	}
	v := benchVec(440, 4)
	dst := make([]float64, 440)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.MulVecInto(dst, v); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubInto440(b *testing.B) {
	x, y := benchVec(440, 5), benchVec(440, 6)
	dst := make([]float64, 440)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SubInto(dst, x, y)
	}
}
