package mathx

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64.
// The zero value is an empty (0x0) matrix.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a zeroed rows×cols matrix.
// It panics when either dimension is negative.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mathx: NewMatrix negative dimension %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// MatrixFromRows builds a matrix from row slices. All rows must have the
// same length; the data is copied.
func MatrixFromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("%w: row %d has %d cols, want %d", ErrDimensionMismatch, i, len(r), cols)
		}
		copy(m.Row(i), r)
	}
	return m, nil
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Row returns a mutable view of row i (no copy).
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mathx: row %d out of range [0,%d)", i, m.rows))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mathx: col %d out of range [0,%d)", j, m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mathx: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// T returns a new matrix that is the transpose of m.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*out.cols+i] = m.data[i*m.cols+j]
		}
	}
	return out
}

// Mul returns the matrix product a×b.
func Mul(a, b *Matrix) (*Matrix, error) {
	if a.cols != b.rows {
		return nil, fmt.Errorf("%w: %dx%d × %dx%d", ErrDimensionMismatch, a.rows, a.cols, b.rows, b.cols)
	}
	out := NewMatrix(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		ar := a.Row(i)
		or := out.Row(i)
		for k, av := range ar {
			if av == 0 {
				continue
			}
			br := b.Row(k)
			for j, bv := range br {
				or[j] += av * bv
			}
		}
	}
	return out, nil
}

// MulVec returns the matrix-vector product m×v.
func (m *Matrix) MulVec(v []float64) ([]float64, error) {
	out := make([]float64, m.rows)
	if err := m.MulVecInto(out, v); err != nil {
		return nil, err
	}
	return out, nil
}

// MulVecInto computes dst = m×v without allocating; dst must have
// length m.Rows() and must not alias v. It is the kernel behind the
// PCA power iteration, where the same product runs thousands of
// times per fit.
func (m *Matrix) MulVecInto(dst, v []float64) error {
	if m.cols != len(v) {
		return fmt.Errorf("%w: %dx%d × %d", ErrDimensionMismatch, m.rows, m.cols, len(v))
	}
	if len(dst) != m.rows {
		return fmt.Errorf("%w: dst %d for %d rows", ErrDimensionMismatch, len(dst), m.rows)
	}
	for i := 0; i < m.rows; i++ {
		dst[i] = Dot(m.Row(i), v)
	}
	return nil
}

// Apply replaces every element with f(element), in place, and returns m.
func (m *Matrix) Apply(f func(float64) float64) *Matrix {
	for i, v := range m.data {
		m.data[i] = f(v)
	}
	return m
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Equal reports whether a and b have the same shape and all elements
// within tol of each other.
func Equal(a, b *Matrix, tol float64) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	for i, v := range a.data {
		if math.Abs(v-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// CovarianceMatrix returns the (cols×cols) covariance matrix of the
// rows of x, treating each row as an observation. Columns are centered
// with their sample means; the normalizer is n-1 (sample covariance).
func CovarianceMatrix(x *Matrix) (*Matrix, error) {
	n := x.rows
	if n < 2 {
		return nil, fmt.Errorf("mathx: covariance needs at least 2 rows, have %d", n)
	}
	d := x.cols
	means := make([]float64, d)
	for i := 0; i < n; i++ {
		Axpy(1, x.Row(i), means)
	}
	Scale(means, 1/float64(n))

	cov := NewMatrix(d, d)
	centered := make([]float64, d)
	for i := 0; i < n; i++ {
		copy(centered, x.Row(i))
		for j := range centered {
			centered[j] -= means[j]
		}
		for a := 0; a < d; a++ {
			ca := centered[a]
			if ca == 0 {
				continue
			}
			row := cov.Row(a)
			for b := 0; b < d; b++ {
				row[b] += ca * centered[b]
			}
		}
	}
	cov.Apply(func(v float64) float64 { return v / float64(n-1) })
	return cov, nil
}
