package codemodel

import (
	"errors"
	"math"
	"testing"
)

func TestCodebaseBasics(t *testing.T) {
	cb := NewCodebase("demo", "0.1")
	p := cb.AddPackage("net")
	if again := cb.AddPackage("net"); again != p {
		t.Error("AddPackage should be idempotent")
	}
	got, err := cb.Package("net")
	if err != nil || got != p {
		t.Errorf("Package: %v %v", got, err)
	}
	if _, err := cb.Package("nosuch"); !errors.Is(err, ErrNoPackage) {
		t.Errorf("want ErrNoPackage, got %v", err)
	}
	p.Classes = append(p.Classes, &Class{
		Name: "A", Package: "net",
		Methods: []Method{{Name: "m", LOC: 10}, {Name: "n", LOC: 5}},
	})
	if p.LOC() != 15 || cb.ClassCount() != 1 {
		t.Errorf("LOC=%d classes=%d", p.LOC(), cb.ClassCount())
	}
	if len(cb.Classes()) != 1 {
		t.Errorf("Classes() = %d", len(cb.Classes()))
	}
}

func TestPackagesSorted(t *testing.T) {
	cb := NewCodebase("demo", "0.1")
	for _, n := range []string{"zeta", "alpha", "mid"} {
		cb.AddPackage(n)
	}
	pkgs := cb.Packages()
	if pkgs[0].Name != "alpha" || pkgs[2].Name != "zeta" {
		t.Errorf("not sorted: %v %v %v", pkgs[0].Name, pkgs[1].Name, pkgs[2].Name)
	}
}

func TestInstability(t *testing.T) {
	cb := NewCodebase("demo", "0.1")
	a := cb.AddPackage("a")
	cb.AddPackage("b")
	c := cb.AddPackage("c")
	a.DependsOn = []string{"b"}
	c.DependsOn = []string{"b"}
	// b: Ca=2, Ce=0 -> I=0. a: Ca=0, Ce=1 -> I=1.
	ib, err := cb.Instability("b")
	if err != nil || ib != 0 {
		t.Errorf("I(b)=%v err=%v", ib, err)
	}
	ia, _ := cb.Instability("a")
	if ia != 1 {
		t.Errorf("I(a)=%v", ia)
	}
	// Isolated package: defined as 0.
	iso := cb.AddPackage("iso")
	_ = iso
	if v, _ := cb.Instability("iso"); v != 0 {
		t.Errorf("I(iso)=%v", v)
	}
	if _, err := cb.Instability("ghost"); err == nil {
		t.Error("want error for unknown package")
	}
}

func TestAfferent(t *testing.T) {
	cb := NewCodebase("demo", "0.1")
	a := cb.AddPackage("a")
	cb.AddPackage("b")
	// Duplicate edges from the same package count once.
	a.DependsOn = []string{"b", "b"}
	if got := cb.Afferent("b"); got != 1 {
		t.Errorf("Afferent(b) = %d, want 1", got)
	}
}

func TestONOSReleasesShape(t *testing.T) {
	rels := ONOSReleases()
	if len(rels) != 8 {
		t.Fatalf("releases = %d", len(rels))
	}
	if rels[0].Version != "1.12" || rels[len(rels)-1].Version != "2.3" {
		t.Errorf("version range %s..%s", rels[0].Version, rels[len(rels)-1].Version)
	}
	// Monotone published series.
	for i := 1; i < len(rels); i++ {
		if rels[i].Commits > rels[i-1].Commits {
			t.Errorf("commits rise at %s", rels[i].Version)
		}
		if rels[i].IntentImplClasses <= rels[i-1].IntentImplClasses {
			t.Errorf("intent.impl classes must grow at %s", rels[i].Version)
		}
		if rels[i].UnstableDeps >= rels[i-1].UnstableDeps {
			t.Errorf("unstable deps must decline at %s", rels[i].Version)
		}
	}
}

func TestGenerateStructure(t *testing.T) {
	p := ONOSReleases()[0]
	cb := Generate(p, 1)
	// net.intent.impl has exactly the published class count.
	intent, err := cb.Package("net.intent.impl")
	if err != nil {
		t.Fatal(err)
	}
	if len(intent.Classes) != p.IntentImplClasses {
		t.Errorf("intent classes = %d, want %d", len(intent.Classes), p.IntentImplClasses)
	}
	// Kernel exists and everything core depends on it.
	if _, err := cb.Package("kernel.core"); err != nil {
		t.Fatal(err)
	}
	if ca := cb.Afferent("kernel.core"); ca < 10 {
		t.Errorf("kernel afferent coupling = %d, suspiciously low", ca)
	}
	// Kernel stays more stable than the experimental leaves.
	ik, err := cb.Instability("kernel.core")
	if err != nil {
		t.Fatal(err)
	}
	il, err := cb.Instability("experimental.leaf0")
	if err != nil {
		t.Fatal(err)
	}
	if !(ik < il) {
		t.Errorf("I(kernel)=%v should be below I(leaf)=%v", ik, il)
	}
	if math.Abs(il-0.5) > 1e-9 {
		t.Errorf("leaf instability = %v, want 0.5", il)
	}
}

func TestGenerateDeterministicSameSeed(t *testing.T) {
	p := ONOSReleases()[4]
	a := Generate(p, 11)
	b := Generate(p, 11)
	if a.ClassCount() != b.ClassCount() {
		t.Fatal("class counts differ")
	}
	pa, pb := a.Packages(), b.Packages()
	if len(pa) != len(pb) {
		t.Fatal("package counts differ")
	}
	for i := range pa {
		if pa[i].Name != pb[i].Name || len(pa[i].Classes) != len(pb[i].Classes) {
			t.Fatalf("package %d differs", i)
		}
	}
}
