// Package codemodel defines a structural model of a Java-style codebase
// (packages, classes, methods, dependencies, type hierarchies) — the
// input the smell analyzer (internal/smell) operates on — plus a
// generator that synthesizes an ONOS-like codebase evolving across the
// release train the paper analyzes (1.12 → 2.3, §VI-A). The generator
// builds real structure (classes with methods, hierarchy links, and
// package dependency edges); the analyzer then *recomputes* every smell
// from that structure, so Figure 8's trends are measured, not asserted.
package codemodel

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
)

// Method is one method of a class.
type Method struct {
	Name string
	LOC  int
	// Cyclomatic is the method's cyclomatic complexity.
	Cyclomatic int
}

// Class is one type in the codebase.
type Class struct {
	Name    string
	Package string
	Methods []Method
	Fields  int
	// SuperType names the extended/implemented type ("" = none).
	SuperType string
	// UsesSuperFeatures reports whether the class actually uses or
	// overrides its supertype's features; false indicates the broken
	// IS-A relation of the Broken Hierarchy smell (paper's Run /
	// ElectionOperation example).
	UsesSuperFeatures bool
	// TypeSwitches counts switch-on-type-tag occurrences — the classic
	// indicator of a Missing Hierarchy.
	TypeSwitches int
	// FanIn / FanOut are incoming/outgoing class-level references.
	FanIn, FanOut int
}

// LOC returns the class's total method lines.
func (c *Class) LOC() int {
	var n int
	for _, m := range c.Methods {
		n += m.LOC
	}
	return n
}

// Package is one package/component.
type Package struct {
	Name    string
	Classes []*Class
	// DependsOn lists package-level efferent dependencies.
	DependsOn []string
}

// LOC returns the package's total lines.
func (p *Package) LOC() int {
	var n int
	for _, c := range p.Classes {
		n += c.LOC()
	}
	return n
}

// Codebase is one analyzed snapshot (a release).
type Codebase struct {
	Name     string
	Version  string
	packages map[string]*Package
}

// NewCodebase returns an empty snapshot.
func NewCodebase(name, version string) *Codebase {
	return &Codebase{Name: name, Version: version, packages: make(map[string]*Package)}
}

// ErrNoPackage is returned when a named package does not exist.
var ErrNoPackage = errors.New("codemodel: no such package")

// AddPackage registers (or returns the existing) package.
func (cb *Codebase) AddPackage(name string) *Package {
	if p, ok := cb.packages[name]; ok {
		return p
	}
	p := &Package{Name: name}
	cb.packages[name] = p
	return p
}

// Package returns a package by name.
func (cb *Codebase) Package(name string) (*Package, error) {
	p, ok := cb.packages[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoPackage, name)
	}
	return p, nil
}

// Packages returns all packages sorted by name.
func (cb *Codebase) Packages() []*Package {
	names := make([]string, 0, len(cb.packages))
	for n := range cb.packages {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Package, len(names))
	for i, n := range names {
		out[i] = cb.packages[n]
	}
	return out
}

// Classes returns every class in the codebase.
func (cb *Codebase) Classes() []*Class {
	var out []*Class
	for _, p := range cb.Packages() {
		out = append(out, p.Classes...)
	}
	return out
}

// ClassCount returns the number of classes.
func (cb *Codebase) ClassCount() int {
	n := 0
	for _, p := range cb.packages {
		n += len(p.Classes)
	}
	return n
}

// Afferent returns the number of packages depending on pkg.
func (cb *Codebase) Afferent(pkg string) int {
	n := 0
	for _, p := range cb.packages {
		for _, d := range p.DependsOn {
			if d == pkg {
				n++
				break
			}
		}
	}
	return n
}

// Instability returns Martin's instability metric I = Ce / (Ca + Ce)
// for the package (0 = maximally stable, 1 = maximally unstable).
func (cb *Codebase) Instability(pkg string) (float64, error) {
	p, err := cb.Package(pkg)
	if err != nil {
		return 0, err
	}
	ce := float64(len(p.DependsOn))
	ca := float64(cb.Afferent(pkg))
	if ca+ce == 0 {
		return 0, nil
	}
	return ce / (ca + ce), nil
}

// ReleaseProfile steers the generator toward one release's published
// characteristics (Figure 8 and §VI-A).
type ReleaseProfile struct {
	Version string
	// Commits is the release's commit count (Figure 10).
	Commits int
	// IntentImplClasses is the class count of net.intent.impl (the
	// paper: 49 at 1.12 growing to 107 at 2.3).
	IntentImplClasses int
	// GodComponents is the number of oversized packages.
	GodComponents int
	// UnstableDeps is the number of stable→unstable dependency edges.
	UnstableDeps int
	// InsufficientlyModularized is the number of oversized classes.
	InsufficientlyModularized int
	// BrokenHierarchies is the number of classes with a broken IS-A.
	BrokenHierarchies int
	// HubClasses is the number of hub-like classes.
	HubClasses int
	// MissingHierarchies is the number of type-switch-heavy classes.
	MissingHierarchies int
}

// ONOSReleases returns the calibrated release train 1.12 → 2.3:
// commits decline; god components stay constant; unstable dependencies
// decline steadily; design smells spike across 1.12–1.14 and then
// plateau (insufficient modularization) or recede (broken hierarchy,
// fixed around ONOS-6594).
func ONOSReleases() []ReleaseProfile {
	return []ReleaseProfile{
		{Version: "1.12", Commits: 4200, IntentImplClasses: 49, GodComponents: 12, UnstableDeps: 40, InsufficientlyModularized: 60, BrokenHierarchies: 20, HubClasses: 4, MissingHierarchies: 3},
		{Version: "1.13", Commits: 3900, IntentImplClasses: 58, GodComponents: 12, UnstableDeps: 37, InsufficientlyModularized: 75, BrokenHierarchies: 28, HubClasses: 5, MissingHierarchies: 3},
		{Version: "1.14", Commits: 3300, IntentImplClasses: 66, GodComponents: 13, UnstableDeps: 34, InsufficientlyModularized: 85, BrokenHierarchies: 34, HubClasses: 5, MissingHierarchies: 4},
		{Version: "1.15", Commits: 2800, IntentImplClasses: 74, GodComponents: 12, UnstableDeps: 31, InsufficientlyModularized: 84, BrokenHierarchies: 30, HubClasses: 4, MissingHierarchies: 4},
		{Version: "2.0", Commits: 2400, IntentImplClasses: 83, GodComponents: 12, UnstableDeps: 28, InsufficientlyModularized: 83, BrokenHierarchies: 24, HubClasses: 4, MissingHierarchies: 3},
		{Version: "2.1", Commits: 2100, IntentImplClasses: 91, GodComponents: 13, UnstableDeps: 26, InsufficientlyModularized: 84, BrokenHierarchies: 18, HubClasses: 5, MissingHierarchies: 3},
		{Version: "2.2", Commits: 2000, IntentImplClasses: 99, GodComponents: 12, UnstableDeps: 24, InsufficientlyModularized: 83, BrokenHierarchies: 14, HubClasses: 4, MissingHierarchies: 3},
		{Version: "2.3", Commits: 1950, IntentImplClasses: 107, GodComponents: 12, UnstableDeps: 22, InsufficientlyModularized: 84, BrokenHierarchies: 12, HubClasses: 4, MissingHierarchies: 3},
	}
}

// Thresholds shared with the smell analyzer; the generator synthesizes
// structures on the correct side of each.
const (
	// GodComponentClasses is the class count above which a package is
	// a god component.
	GodComponentClasses = 30
	// InsufficientMethods is the method count above which a class is
	// insufficiently modularized.
	InsufficientMethods = 30
	// HubFan is the fan-in AND fan-out above which a class is hub-like.
	HubFan = 20
	// MissingHierarchySwitches is the type-switch count above which a
	// class indicates a missing hierarchy.
	MissingHierarchySwitches = 4
)

// Generate synthesizes the snapshot for one release profile. The same
// profile and seed always produce the identical codebase.
func Generate(p ReleaseProfile, seed int64) *Codebase {
	rng := rand.New(rand.NewSource(seed))
	cb := NewCodebase("onos", p.Version)

	// Core packages, always present.
	core := []string{
		"net.intent.impl", "net.flow", "net.topology", "net.host",
		"store.primitives", "cli", "rest", "provider.of",
		"app.fwd", "app.routing", "security", "metrics",
	}
	for _, name := range core {
		cb.AddPackage(name)
	}

	// net.intent.impl grows per the paper.
	intent := cb.AddPackage("net.intent.impl")
	for i := 0; i < p.IntentImplClasses; i++ {
		intent.Classes = append(intent.Classes, normalClass(rng, "Intent", "net.intent.impl", i))
	}

	// God components: oversized packages beyond the threshold.
	// net.intent.impl (49–107 classes) is itself one of them, so only
	// the remainder are synthesized as dedicated giants.
	for g := 0; g < p.GodComponents-1; g++ {
		name := fmt.Sprintf("giant.component%d", g)
		pkg := cb.AddPackage(name)
		n := GodComponentClasses + 5 + rng.Intn(10)
		for i := 0; i < n; i++ {
			pkg.Classes = append(pkg.Classes, normalClass(rng, "Giant", name, i))
		}
	}

	// Fill the remaining core packages with modest class counts.
	for _, name := range core[1:] {
		pkg := cb.AddPackage(name)
		n := 8 + rng.Intn(10)
		for i := 0; i < n; i++ {
			pkg.Classes = append(pkg.Classes, normalClass(rng, "Cls", name, i))
		}
	}

	// Insufficiently modularized classes: too many methods.
	placeSpecial(cb, rng, p.InsufficientlyModularized, func(pkg *Package, i int) {
		c := normalClass(rng, "Bloated", pkg.Name, i)
		for len(c.Methods) <= InsufficientMethods+rng.Intn(20) {
			c.Methods = append(c.Methods, Method{
				Name: fmt.Sprintf("op%d", len(c.Methods)), LOC: 20 + rng.Intn(40),
				Cyclomatic: 2 + rng.Intn(8),
			})
		}
		pkg.Classes = append(pkg.Classes, c)
	})

	// Broken hierarchies: subtype ignores its supertype's features.
	placeSpecial(cb, rng, p.BrokenHierarchies, func(pkg *Package, i int) {
		c := normalClass(rng, "Run", pkg.Name, i)
		c.SuperType = "ElectionOperation"
		c.UsesSuperFeatures = false
		pkg.Classes = append(pkg.Classes, c)
	})

	// Hub-like classes: high fan-in and fan-out.
	placeSpecial(cb, rng, p.HubClasses, func(pkg *Package, i int) {
		c := normalClass(rng, "Hub", pkg.Name, i)
		c.FanIn = HubFan + 3 + rng.Intn(10)
		c.FanOut = HubFan + 2 + rng.Intn(10)
		pkg.Classes = append(pkg.Classes, c)
	})

	// Missing hierarchies: type-switch-riddled classes.
	placeSpecial(cb, rng, p.MissingHierarchies, func(pkg *Package, i int) {
		c := normalClass(rng, "Dispatcher", pkg.Name, i)
		c.TypeSwitches = MissingHierarchySwitches + 1 + rng.Intn(4)
		pkg.Classes = append(pkg.Classes, c)
	})

	// Dependency structure: wire a base DAG, then add the profile's
	// number of unstable edges (stable package depending on a less
	// stable one).
	wireDependencies(cb, rng, p.UnstableDeps)
	return cb
}

// normalClass builds an unremarkable healthy class.
func normalClass(rng *rand.Rand, prefix, pkg string, i int) *Class {
	c := &Class{
		Name:    fmt.Sprintf("%s%s%d", prefix, suffixOf(pkg), i),
		Package: pkg,
		Fields:  1 + rng.Intn(6),
		// Healthy subtype: uses its supertype.
		UsesSuperFeatures: true,
		FanIn:             rng.Intn(6),
		FanOut:            rng.Intn(6),
	}
	n := 3 + rng.Intn(10)
	for m := 0; m < n; m++ {
		c.Methods = append(c.Methods, Method{
			Name: fmt.Sprintf("m%d", m), LOC: 5 + rng.Intn(30), Cyclomatic: 1 + rng.Intn(5),
		})
	}
	return c
}

func suffixOf(pkg string) string {
	out := make([]rune, 0, len(pkg))
	for _, r := range pkg {
		if r != '.' {
			out = append(out, r)
		}
	}
	if len(out) > 6 {
		out = out[len(out)-6:]
	}
	return string(out)
}

// placeSpecial distributes n special classes across packages,
// skipping net.intent.impl so its published class count stays exact.
func placeSpecial(cb *Codebase, rng *rand.Rand, n int, add func(*Package, int)) {
	var pkgs []*Package
	for _, p := range cb.Packages() {
		if p.Name != "net.intent.impl" {
			pkgs = append(pkgs, p)
		}
	}
	for i := 0; i < n; i++ {
		add(pkgs[rng.Intn(len(pkgs))], i)
	}
}

// wireDependencies creates a layered dependency DAG plus exactly
// nUnstable violations of the Stable Dependencies Principle: edges
// from the (stable) kernel package onto dedicated experimental leaves
// that are less stable than it.
func wireDependencies(cb *Codebase, rng *rand.Rand, nUnstable int) {
	pkgs := cb.Packages()
	// The kernel is the foundation everything depends on: large
	// afferent coupling keeps its instability low.
	kernel := cb.AddPackage("kernel.core")
	kernel.Classes = append(kernel.Classes, normalClass(rng, "Kernel", "kernel.core", 0))
	// Base mesh: each package depends on its 3 cyclic successors and on
	// the kernel, giving every core package identical coupling
	// (Ca = 3, Ce = 4) and hence identical instability 4/7 — far above
	// the kernel's, so no base edge violates the SDP.
	for i, p := range pkgs {
		for k := 1; k <= 3; k++ {
			q := pkgs[(i+k)%len(pkgs)]
			if q != p {
				p.DependsOn = append(p.DependsOn, q.Name)
			}
		}
		p.DependsOn = append(p.DependsOn, "kernel.core")
	}
	// SDP violations: the stable kernel depends on unstable leaves.
	// Each leaf has Ce = Ca = 1, so I(leaf) = 0.5, while the kernel's
	// instability stays below 0.5 thanks to its afferent weight.
	for v := 0; v < nUnstable; v++ {
		leafName := fmt.Sprintf("experimental.leaf%d", v)
		leaf := cb.AddPackage(leafName)
		leaf.Classes = append(leaf.Classes, normalClass(rng, "Leaf", leafName, v))
		leaf.DependsOn = append(leaf.DependsOn, "kernel.core")
		kernel.DependsOn = append(kernel.DependsOn, leafName)
	}
}
