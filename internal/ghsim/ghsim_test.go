package ghsim

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"sdnbugs/internal/corpus"
	"sdnbugs/internal/tracker"
)

func newServer(t *testing.T) (*httptest.Server, *tracker.Store) {
	t.Helper()
	store := tracker.NewStore()
	srv := httptest.NewServer(NewHandler(store, "faucetsdn", "faucet"))
	t.Cleanup(srv.Close)
	return srv, store
}

func seed(t *testing.T, store *tracker.Store) {
	t.Helper()
	base := time.Date(2019, 5, 1, 0, 0, 0, 0, time.UTC)
	issues := []tracker.Issue{
		{
			ID: "FAUCET#1", Controller: tracker.FAUCET,
			Title:       "Gauge crash on InfluxDB type mismatch",
			Description: "Gauge crashed because of a misconfigured data type.",
			Status:      tracker.StatusClosed, Created: base,
			Labels: []string{"bug"},
		},
		{
			ID: "FAUCET#2", Controller: tracker.FAUCET,
			Title:       "Mirroring misses broadcast packets",
			Description: "Output broadcast packets are not mirrored, wrong behaviour.",
			Status:      tracker.StatusOpen, Created: base.AddDate(0, 0, 1),
			Comments: []tracker.Comment{{Author: "bob", Body: "same here", Created: base.AddDate(0, 0, 2)}},
		},
	}
	for _, iss := range issues {
		if err := store.Put(iss); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFetchAllAndSeverityExtraction(t *testing.T) {
	srv, store := newServer(t)
	seed(t, store)
	c := Client{BaseURL: srv.URL, Repo: "faucetsdn/faucet"}
	got, err := c.FetchAll(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d, want 2", len(got))
	}
	byID := map[string]tracker.Issue{}
	for _, iss := range got {
		byID[iss.ID] = iss
	}
	// "crash" keyword => critical; "wrong behaviour" => major.
	if s := byID["FAUCET#1"].Severity; s != tracker.SeverityCritical {
		t.Errorf("FAUCET#1 severity = %v, want critical", s)
	}
	if s := byID["FAUCET#2"].Severity; s != tracker.SeverityMajor {
		t.Errorf("FAUCET#2 severity = %v, want major", s)
	}
	if len(byID["FAUCET#2"].Comments) != 1 {
		t.Errorf("comments lost: %+v", byID["FAUCET#2"].Comments)
	}
}

func TestStateFilter(t *testing.T) {
	srv, store := newServer(t)
	seed(t, store)
	c := Client{BaseURL: srv.URL, Repo: "faucetsdn/faucet"}
	closed, err := c.FetchAll(context.Background(), "closed")
	if err != nil {
		t.Fatal(err)
	}
	if len(closed) != 1 || closed[0].ID != "FAUCET#1" {
		t.Errorf("closed = %+v", closed)
	}
	if closed[0].Status != tracker.StatusClosed {
		t.Errorf("status = %v", closed[0].Status)
	}
}

func TestNoResolutionTimestampExposed(t *testing.T) {
	// Even for closed FAUCET issues with no Resolved value, the wire
	// and the client must agree: no resolution time (paper §VIII).
	srv, store := newServer(t)
	seed(t, store)
	c := Client{BaseURL: srv.URL, Repo: "faucetsdn/faucet"}
	got, err := c.FetchAll(context.Background(), "closed")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got[0].ResolutionTime(); ok {
		t.Error("GitHub-mined issue must not expose a resolution time")
	}
}

func TestPaginationAcrossPages(t *testing.T) {
	srv, store := newServer(t)
	base := time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 1; i <= 73; i++ {
		if err := store.Put(tracker.Issue{
			ID: "FAUCET#" + itoa(i), Controller: tracker.FAUCET,
			Title: "t", Description: "d", Status: tracker.StatusClosed,
			Created: base.Add(time.Duration(i) * time.Hour),
		}); err != nil {
			t.Fatal(err)
		}
	}
	c := Client{BaseURL: srv.URL, Repo: "faucetsdn/faucet", PerPage: 20}
	got, err := c.FetchAll(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 73 {
		t.Errorf("got %d, want 73", len(got))
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestGetSingleIssue(t *testing.T) {
	srv, store := newServer(t)
	seed(t, store)
	resp, err := http.Get(srv.URL + "/repos/faucetsdn/faucet/issues/1")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s", resp.Status)
	}
	missing, err := http.Get(srv.URL + "/repos/faucetsdn/faucet/issues/999")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = missing.Body.Close() }()
	if missing.StatusCode != http.StatusNotFound {
		t.Errorf("missing issue status %s, want 404", missing.Status)
	}
}

func TestMineGeneratedFaucetCorpus(t *testing.T) {
	srv, store := newServer(t)
	corp, err := corpus.Generate(5)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, iss := range corp.Issues {
		if iss.Controller != tracker.FAUCET {
			continue
		}
		if err := store.Put(iss); err != nil {
			t.Fatal(err)
		}
		want++
	}
	if want != 251 {
		t.Fatalf("FAUCET corpus = %d, want 251 (paper §II-B)", want)
	}
	c := Client{BaseURL: srv.URL, Repo: "faucetsdn/faucet", PerPage: 100}
	got, err := c.FetchAll(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != want {
		t.Errorf("mined %d, want %d", len(got), want)
	}
	// Severity keyword extraction should mark most of these critical-
	// band: the corpus is all critical bugs, with crash/fatal language.
	criticalBand := 0
	for _, iss := range got {
		if iss.Severity.Critical() {
			criticalBand++
		}
	}
	if frac := float64(criticalBand) / float64(len(got)); frac < 0.3 {
		t.Errorf("keyword heuristic found %.2f critical-band, suspiciously low", frac)
	}
}

func TestClientHandlesServerFailure(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer bad.Close()
	c := Client{BaseURL: bad.URL, Repo: "faucetsdn/faucet"}
	if _, err := c.FetchAll(context.Background(), ""); err == nil {
		t.Error("want error from failing server")
	}
}

func TestClientHandlesGarbageJSON(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("[{broken"))
	}))
	defer bad.Close()
	c := Client{BaseURL: bad.URL, Repo: "faucetsdn/faucet"}
	if _, err := c.FetchAll(context.Background(), ""); err == nil {
		t.Error("want decode error")
	}
}
