package ghsim

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"sdnbugs/internal/chaos"
	"sdnbugs/internal/tracker"
	"sdnbugs/internal/trackertest"
)

func TestMiningUnderChaosIsByteIdentical(t *testing.T) {
	srv, store := newServer(t)
	seed(t, store)
	baseline, err := (&Client{BaseURL: srv.URL, Repo: "faucetsdn/faucet", PerPage: 1}).FetchAll(
		context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}

	flaky := httptest.NewServer(chaos.Wrap(NewHandler(store, "faucetsdn", "faucet"), chaos.Config{
		Seed: 17, Rate: 0.5, RetryAfter: time.Millisecond, Latency: time.Millisecond,
	}))
	defer flaky.Close()
	hc, rt := trackertest.ResilientClient()
	got, err := (&Client{BaseURL: flaky.URL, Repo: "faucetsdn/faucet",
		HTTPClient: hc, PerPage: 1}).FetchAll(context.Background(), "")
	if err != nil {
		t.Fatalf("mining under chaos failed: %v", err)
	}
	if !reflect.DeepEqual(got, baseline) {
		t.Errorf("chaos changed the mined data:\n got %+v\nwant %+v", got, baseline)
	}
	if m := rt.Metrics(); m.Retries == 0 {
		t.Errorf("metrics = %+v: chaos at rate 0.5 should have forced retries", m)
	}
}

func TestResumeContinuesFromLastCompletedPage(t *testing.T) {
	srv, store := newServer(t)
	base := time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 1; i <= 73; i++ {
		if err := store.Put(tracker.Issue{
			ID: fmt.Sprintf("FAUCET#%d", i), Controller: tracker.FAUCET,
			Title: "t", Description: "d", Status: tracker.StatusClosed,
			Created: base.Add(time.Duration(i) * time.Hour),
		}); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	full, err := (&Client{BaseURL: srv.URL, Repo: "faucetsdn/faucet", PerPage: 20}).FetchAll(ctx, "")
	if err != nil {
		t.Fatal(err)
	}

	// Serve two pages, then fail until healed.
	gate, heal := trackertest.Gate(t, NewHandler(store, "faucetsdn", "faucet"), 2)

	c := Client{BaseURL: gate.URL, Repo: "faucetsdn/faucet",
		HTTPClient: &http.Client{}, PerPage: 20}
	var cur Cursor
	if err := c.Resume(ctx, "", &cur); err == nil {
		t.Fatal("want failure on the third page")
	}
	if cur.Page != 3 || len(cur.Issues) != 40 {
		t.Fatalf("cursor after failure: page=%d issues=%d, want 3/40", cur.Page, len(cur.Issues))
	}
	heal()
	if err := c.Resume(ctx, "", &cur); err != nil {
		t.Fatalf("resume after heal: %v", err)
	}
	if !reflect.DeepEqual(cur.Issues, full) {
		t.Errorf("resumed mining diverged: %d issues vs %d baseline", len(cur.Issues), len(full))
	}
}

func TestClientSendsMiningHeaders(t *testing.T) {
	var accept, ua string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		accept, ua = r.Header.Get("Accept"), r.Header.Get("User-Agent")
		_, _ = w.Write([]byte(`[]`))
	}))
	defer srv.Close()
	c := Client{BaseURL: srv.URL, Repo: "faucetsdn/faucet", HTTPClient: &http.Client{}}
	if _, err := c.FetchAll(context.Background(), ""); err != nil {
		t.Fatal(err)
	}
	if accept != "application/json" || ua != DefaultUserAgent {
		t.Errorf("headers = Accept %q, User-Agent %q", accept, ua)
	}
	c.UserAgent = "custom/2.0"
	if _, err := c.FetchAll(context.Background(), ""); err != nil {
		t.Fatal(err)
	}
	if ua != "custom/2.0" {
		t.Errorf("User-Agent override = %q", ua)
	}
}

func TestPageCapStopsRunawayPaging(t *testing.T) {
	// A server that always returns a full page: the hard page cap bounds
	// the loop.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = fmt.Fprint(w, `[{"number":1,"title":"t","body":"d","state":"open",`+
			`"created_at":"2019-01-01T00:00:00Z"}]`)
	}))
	defer srv.Close()
	c := Client{BaseURL: srv.URL, Repo: "faucetsdn/faucet",
		HTTPClient: &http.Client{}, PerPage: 1, MaxPages: 5}
	_, err := c.FetchAll(context.Background(), "")
	if err == nil || !strings.Contains(err.Error(), "exceeded 5 pages") {
		t.Fatalf("err = %v, want page-cap error", err)
	}
}
