// Package ghsim implements a GitHub-Issues-like REST API over a
// tracker.Store — the stand-in for the live GitHub repository the
// paper mined FAUCET bugs from — plus a typed client. GitHub issues
// carry no explicit severity and, for this study's purposes, no usable
// resolution timestamp (paper §VIII), so the client recovers severity
// with the keyword heuristic of tracker.ExtractSeverity.
//
// The serving logic itself lives in internal/trackerd (the shared
// tracker engine, which also hosts the multi-tenant durable service);
// this package is the single-store compatibility surface plus the
// mining client.
package ghsim

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"sdnbugs/internal/resilience"
	"sdnbugs/internal/tracker"
	"sdnbugs/internal/trackerd"
)

// Handler serves the GitHub-like API for the given store.
type Handler struct {
	inner http.Handler
}

var _ http.Handler = (*Handler)(nil)

// NewHandler builds a Handler for the repository path owner/name.
func NewHandler(store *tracker.Store, owner, name string) *Handler {
	return &Handler{inner: trackerd.NewGitHubHandler(
		trackerd.StoreSource{Store: store}, owner, name, tracker.FAUCET)}
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.inner.ServeHTTP(w, r)
}

// wireIssue is the GitHub issue wire shape, owned by the shared engine.
type wireIssue = trackerd.GHIssue

// fromWire converts a GitHub wire issue to the neutral FAUCET model.
func fromWire(wi wireIssue) tracker.Issue {
	return trackerd.FromGHWire(wi, tracker.FAUCET)
}

// Client hardening defaults (mirroring jirasim).
const (
	// DefaultUserAgent identifies the miner to the server.
	DefaultUserAgent = "sdnbugs-miner/1.0"
	// DefaultMaxBodyBytes caps how much of a response body is read.
	DefaultMaxBodyBytes = 10 << 20
	// DefaultMaxPages bounds a paging loop.
	DefaultMaxPages = 1000
)

// DefaultClient is used when Client.HTTPClient is nil: a retrying
// transport with exponential backoff, full jitter, and Retry-After
// honoring.
var DefaultClient = &http.Client{Transport: resilience.NewTransport(nil, resilience.Policy{
	MaxAttempts:       4,
	BaseDelay:         50 * time.Millisecond,
	MaxDelay:          2 * time.Second,
	PerAttemptTimeout: 30 * time.Second,
}, nil)}

// Client mines issues from a GitHub-like server.
type Client struct {
	// BaseURL is the server root.
	BaseURL string
	// Repo is the owner/name path, e.g. "faucetsdn/faucet".
	Repo string
	// HTTPClient defaults to DefaultClient (a resilient, retrying
	// client — pass a plain http.Client to opt out).
	HTTPClient *http.Client
	// PerPage is the page size (default 30).
	PerPage int
	// UserAgent overrides DefaultUserAgent.
	UserAgent string
	// MaxBodyBytes caps response bodies (default DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// MaxPages caps a single FetchAll/Resume paging loop
	// (default DefaultMaxPages).
	MaxPages int
	// OnPage, when set, is called after every completed page with the
	// advanced cursor, before the loop decides whether to continue — so
	// a checkpointing caller (the durable miner) sees the final page
	// too. Returning an error aborts the run; the cursor keeps every
	// page fetched so far.
	OnPage func(*Cursor) error
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return DefaultClient
}

func (c *Client) userAgent() string {
	if c.UserAgent != "" {
		return c.UserAgent
	}
	return DefaultUserAgent
}

func (c *Client) maxBody() int64 {
	if c.MaxBodyBytes > 0 {
		return c.MaxBodyBytes
	}
	return DefaultMaxBodyBytes
}

// Cursor is a resumable position in a paged issue listing. After a
// failed Resume the cursor holds every fully-fetched page, so retrying
// picks up from the last completed page instead of page one.
type Cursor struct {
	// Page is the next page number to request (pages start at 1; the
	// zero value is normalized to 1).
	Page int
	// Issues accumulates the issues fetched so far.
	Issues []tracker.Issue
}

// FetchAll pages through the repository's issues with the given state
// ("open", "closed", or "" for all), converting to the neutral model
// and applying keyword severity extraction.
func (c *Client) FetchAll(ctx context.Context, state string) ([]tracker.Issue, error) {
	var cur Cursor
	if err := c.Resume(ctx, state, &cur); err != nil {
		return nil, err
	}
	return cur.Issues, nil
}

// Resume continues a paged listing from cur, appending each completed
// page before advancing, so the cursor stays valid if a page fails
// mid-run. Paging is bounded by MaxPages.
func (c *Client) Resume(ctx context.Context, state string, cur *Cursor) error {
	perPage := c.PerPage
	if perPage <= 0 {
		perPage = 30
	}
	maxPages := c.MaxPages
	if maxPages <= 0 {
		maxPages = DefaultMaxPages
	}
	if cur.Page < 1 {
		cur.Page = 1
	}
	for pages := 0; ; pages++ {
		if pages >= maxPages {
			return fmt.Errorf("ghsim: listing exceeded %d pages (page=%d) — refusing to page forever", maxPages, cur.Page)
		}
		batch, err := c.fetchPage(ctx, state, cur.Page, perPage)
		if err != nil {
			return err
		}
		cur.Issues = append(cur.Issues, batch...)
		cur.Page++
		if c.OnPage != nil {
			if err := c.OnPage(cur); err != nil {
				return fmt.Errorf("ghsim: page checkpoint: %w", err)
			}
		}
		if len(batch) < perPage {
			return nil
		}
	}
}

func (c *Client) fetchPage(ctx context.Context, state string, page, perPage int) ([]tracker.Issue, error) {
	u, err := url.Parse(c.BaseURL + "/repos/" + c.Repo + "/issues")
	if err != nil {
		return nil, fmt.Errorf("ghsim: bad base URL: %w", err)
	}
	q := u.Query()
	if state != "" {
		q.Set("state", state)
	}
	q.Set("page", strconv.Itoa(page))
	q.Set("per_page", strconv.Itoa(perPage))
	u.RawQuery = q.Encode()

	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
	if err != nil {
		return nil, fmt.Errorf("ghsim: build request: %w", err)
	}
	req.Header.Set("Accept", "application/json")
	req.Header.Set("User-Agent", c.userAgent())
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, fmt.Errorf("ghsim: list issues: %w", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		// Drain (bounded) so the connection can be reused.
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("ghsim: list issues returned %s", resp.Status)
	}
	var wires []wireIssue
	if err := json.NewDecoder(io.LimitReader(resp.Body, c.maxBody())).Decode(&wires); err != nil {
		return nil, fmt.Errorf("ghsim: decode issues: %w", err)
	}
	out := make([]tracker.Issue, 0, len(wires))
	for _, wi := range wires {
		out = append(out, fromWire(wi))
	}
	return out, nil
}
