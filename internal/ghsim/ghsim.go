// Package ghsim implements a GitHub-Issues-like REST API over a
// tracker.Store — the stand-in for the live GitHub repository the
// paper mined FAUCET bugs from — plus a typed client. GitHub issues
// carry no explicit severity and, for this study's purposes, no usable
// resolution timestamp (paper §VIII), so the client recovers severity
// with the keyword heuristic of tracker.ExtractSeverity.
package ghsim

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"sdnbugs/internal/resilience"
	"sdnbugs/internal/tracker"
)

// Handler serves the GitHub-like API for the given store.
type Handler struct {
	store *tracker.Store
	// Repo is the owner/name path the handler answers under,
	// e.g. "faucetsdn/faucet".
	repo string
	mux  *http.ServeMux
}

var _ http.Handler = (*Handler)(nil)

// NewHandler builds a Handler for the repository path owner/name.
func NewHandler(store *tracker.Store, owner, name string) *Handler {
	h := &Handler{store: store, repo: owner + "/" + name, mux: http.NewServeMux()}
	h.mux.HandleFunc("GET /repos/"+owner+"/"+name+"/issues", h.handleList)
	h.mux.HandleFunc("GET /repos/"+owner+"/"+name+"/issues/{number}", h.handleGet)
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

// wireIssue is the GitHub issue JSON shape (subset).
type wireIssue struct {
	Number    int         `json:"number"`
	Title     string      `json:"title"`
	Body      string      `json:"body"`
	State     string      `json:"state"`
	CreatedAt time.Time   `json:"created_at"`
	ClosedAt  *time.Time  `json:"closed_at"`
	Labels    []wireLabel `json:"labels"`
	Comments  []wireNote  `json:"comments_data,omitempty"`
}

type wireLabel struct {
	Name string `json:"name"`
}

type wireNote struct {
	User      wireUser  `json:"user"`
	Body      string    `json:"body"`
	CreatedAt time.Time `json:"created_at"`
}

type wireUser struct {
	Login string `json:"login"`
}

func toWire(iss tracker.Issue) (wireIssue, error) {
	num, err := issueNumber(iss.ID)
	if err != nil {
		return wireIssue{}, err
	}
	w := wireIssue{
		Number:    num,
		Title:     iss.Title,
		Body:      iss.Description,
		State:     "open",
		CreatedAt: iss.Created,
	}
	if iss.Status == tracker.StatusClosed || iss.Status == tracker.StatusResolved {
		w.State = "closed"
		// GitHub would expose closed_at, but as in the paper's data set
		// the simulator's FAUCET issues carry no resolution timestamp;
		// only set it when the store has one.
		if !iss.Resolved.IsZero() {
			t := iss.Resolved
			w.ClosedAt = &t
		}
	}
	for _, l := range iss.Labels {
		w.Labels = append(w.Labels, wireLabel{Name: l})
	}
	for _, c := range iss.Comments {
		w.Comments = append(w.Comments, wireNote{
			User: wireUser{Login: c.Author}, Body: c.Body, CreatedAt: c.Created,
		})
	}
	return w, nil
}

// issueNumber extracts N from IDs of the form "<project>#N".
func issueNumber(id string) (int, error) {
	for i := len(id) - 1; i >= 0; i-- {
		if id[i] == '#' {
			n, err := strconv.Atoi(id[i+1:])
			if err != nil {
				return 0, fmt.Errorf("ghsim: bad issue id %q: %w", id, err)
			}
			return n, nil
		}
	}
	return 0, fmt.Errorf("ghsim: issue id %q has no number", id)
}

func (h *Handler) handleList(w http.ResponseWriter, r *http.Request) {
	qs := r.URL.Query()
	q := tracker.Query{Controller: tracker.FAUCET}
	switch qs.Get("state") {
	case "closed":
		q.Status = tracker.StatusClosed
	case "open":
		q.Status = tracker.StatusOpen
	}
	page := atoiDefault(qs.Get("page"), 1)
	if page < 1 {
		page = 1
	}
	perPage := atoiDefault(qs.Get("per_page"), 30)
	if perPage > 100 {
		perPage = 100
	}
	q.Offset = (page - 1) * perPage
	q.Limit = perPage

	issues, _ := h.store.List(q)
	out := make([]wireIssue, 0, len(issues))
	for _, iss := range issues {
		wi, err := toWire(iss)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		out = append(out, wi)
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

func (h *Handler) handleGet(w http.ResponseWriter, r *http.Request) {
	num := r.PathValue("number")
	iss, err := h.store.Get("FAUCET#" + num)
	if err != nil {
		if errors.Is(err, tracker.ErrNotFound) {
			http.Error(w, "not found", http.StatusNotFound)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	wi, err := toWire(iss)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(wi)
}

func atoiDefault(s string, def int) int {
	if s == "" {
		return def
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return def
	}
	return n
}

// Client hardening defaults (mirroring jirasim).
const (
	// DefaultUserAgent identifies the miner to the server.
	DefaultUserAgent = "sdnbugs-miner/1.0"
	// DefaultMaxBodyBytes caps how much of a response body is read.
	DefaultMaxBodyBytes = 10 << 20
	// DefaultMaxPages bounds a paging loop.
	DefaultMaxPages = 1000
)

// DefaultClient is used when Client.HTTPClient is nil: a retrying
// transport with exponential backoff, full jitter, and Retry-After
// honoring.
var DefaultClient = &http.Client{Transport: resilience.NewTransport(nil, resilience.Policy{
	MaxAttempts:       4,
	BaseDelay:         50 * time.Millisecond,
	MaxDelay:          2 * time.Second,
	PerAttemptTimeout: 30 * time.Second,
}, nil)}

// Client mines issues from a GitHub-like server.
type Client struct {
	// BaseURL is the server root.
	BaseURL string
	// Repo is the owner/name path, e.g. "faucetsdn/faucet".
	Repo string
	// HTTPClient defaults to DefaultClient (a resilient, retrying
	// client — pass a plain http.Client to opt out).
	HTTPClient *http.Client
	// PerPage is the page size (default 30).
	PerPage int
	// UserAgent overrides DefaultUserAgent.
	UserAgent string
	// MaxBodyBytes caps response bodies (default DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// MaxPages caps a single FetchAll/Resume paging loop
	// (default DefaultMaxPages).
	MaxPages int
	// OnPage, when set, is called after every completed page with the
	// advanced cursor, before the loop decides whether to continue — so
	// a checkpointing caller (the durable miner) sees the final page
	// too. Returning an error aborts the run; the cursor keeps every
	// page fetched so far.
	OnPage func(*Cursor) error
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return DefaultClient
}

func (c *Client) userAgent() string {
	if c.UserAgent != "" {
		return c.UserAgent
	}
	return DefaultUserAgent
}

func (c *Client) maxBody() int64 {
	if c.MaxBodyBytes > 0 {
		return c.MaxBodyBytes
	}
	return DefaultMaxBodyBytes
}

// Cursor is a resumable position in a paged issue listing. After a
// failed Resume the cursor holds every fully-fetched page, so retrying
// picks up from the last completed page instead of page one.
type Cursor struct {
	// Page is the next page number to request (pages start at 1; the
	// zero value is normalized to 1).
	Page int
	// Issues accumulates the issues fetched so far.
	Issues []tracker.Issue
}

// FetchAll pages through the repository's issues with the given state
// ("open", "closed", or "" for all), converting to the neutral model
// and applying keyword severity extraction.
func (c *Client) FetchAll(ctx context.Context, state string) ([]tracker.Issue, error) {
	var cur Cursor
	if err := c.Resume(ctx, state, &cur); err != nil {
		return nil, err
	}
	return cur.Issues, nil
}

// Resume continues a paged listing from cur, appending each completed
// page before advancing, so the cursor stays valid if a page fails
// mid-run. Paging is bounded by MaxPages.
func (c *Client) Resume(ctx context.Context, state string, cur *Cursor) error {
	perPage := c.PerPage
	if perPage <= 0 {
		perPage = 30
	}
	maxPages := c.MaxPages
	if maxPages <= 0 {
		maxPages = DefaultMaxPages
	}
	if cur.Page < 1 {
		cur.Page = 1
	}
	for pages := 0; ; pages++ {
		if pages >= maxPages {
			return fmt.Errorf("ghsim: listing exceeded %d pages (page=%d) — refusing to page forever", maxPages, cur.Page)
		}
		batch, err := c.fetchPage(ctx, state, cur.Page, perPage)
		if err != nil {
			return err
		}
		cur.Issues = append(cur.Issues, batch...)
		cur.Page++
		if c.OnPage != nil {
			if err := c.OnPage(cur); err != nil {
				return fmt.Errorf("ghsim: page checkpoint: %w", err)
			}
		}
		if len(batch) < perPage {
			return nil
		}
	}
}

func (c *Client) fetchPage(ctx context.Context, state string, page, perPage int) ([]tracker.Issue, error) {
	u, err := url.Parse(c.BaseURL + "/repos/" + c.Repo + "/issues")
	if err != nil {
		return nil, fmt.Errorf("ghsim: bad base URL: %w", err)
	}
	q := u.Query()
	if state != "" {
		q.Set("state", state)
	}
	q.Set("page", strconv.Itoa(page))
	q.Set("per_page", strconv.Itoa(perPage))
	u.RawQuery = q.Encode()

	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
	if err != nil {
		return nil, fmt.Errorf("ghsim: build request: %w", err)
	}
	req.Header.Set("Accept", "application/json")
	req.Header.Set("User-Agent", c.userAgent())
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, fmt.Errorf("ghsim: list issues: %w", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		// Drain (bounded) so the connection can be reused.
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("ghsim: list issues returned %s", resp.Status)
	}
	var wires []wireIssue
	if err := json.NewDecoder(io.LimitReader(resp.Body, c.maxBody())).Decode(&wires); err != nil {
		return nil, fmt.Errorf("ghsim: decode issues: %w", err)
	}
	out := make([]tracker.Issue, 0, len(wires))
	for _, wi := range wires {
		out = append(out, fromWire(wi))
	}
	return out, nil
}

func fromWire(wi wireIssue) tracker.Issue {
	iss := tracker.Issue{
		ID:          fmt.Sprintf("FAUCET#%d", wi.Number),
		Controller:  tracker.FAUCET,
		Title:       wi.Title,
		Description: wi.Body,
		Created:     wi.CreatedAt,
		Status:      tracker.StatusOpen,
	}
	if wi.State == "closed" {
		iss.Status = tracker.StatusClosed
		if wi.ClosedAt != nil {
			iss.Resolved = *wi.ClosedAt
		}
	}
	for _, l := range wi.Labels {
		iss.Labels = append(iss.Labels, l.Name)
	}
	for _, c := range wi.Comments {
		iss.Comments = append(iss.Comments, tracker.Comment{
			Author: c.User.Login, Body: c.Body, Created: c.CreatedAt,
		})
	}
	// GitHub has no severity field: apply the keyword heuristic of the
	// paper's methodology (§II-B).
	iss.Severity = tracker.ExtractSeverity(iss.Text())
	return iss
}
