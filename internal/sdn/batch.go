package sdn

import (
	"slices"
	"sync"
)

// EventRing is a fixed-capacity ring buffer of events: the backing
// array is allocated once and never grows, so steady-state enqueue and
// drain perform no allocation. It is not safe for concurrent use —
// EventQueue adds the locking.
type EventRing struct {
	buf   []Event
	head  int // index of the oldest event
	count int
}

// NewEventRing returns a ring holding at most capacity events.
func NewEventRing(capacity int) *EventRing {
	if capacity < 1 {
		capacity = 1
	}
	return &EventRing{buf: make([]Event, capacity)}
}

// Len returns the number of buffered events.
func (r *EventRing) Len() int { return r.count }

// Cap returns the fixed capacity.
func (r *EventRing) Cap() int { return len(r.buf) }

// Push appends ev, reporting false if the ring is full.
func (r *EventRing) Push(ev Event) bool {
	if r.count == len(r.buf) {
		return false
	}
	r.buf[(r.head+r.count)%len(r.buf)] = ev
	r.count++
	return true
}

// PopAll appends every buffered event to dst in FIFO order, empties
// the ring, and returns the extended slice.
func (r *EventRing) PopAll(dst []Event) []Event {
	for i := 0; i < r.count; i++ {
		dst = append(dst, r.buf[(r.head+i)%len(r.buf)])
	}
	r.head = 0
	r.count = 0
	return dst
}

// EventQueue is a mutex-guarded EventRing: producers enqueue under one
// lock acquisition per call, and a consumer drains every buffered
// event with a single lock acquisition — the batching primitive the
// controller's ProcessBatch consumes.
type EventQueue struct {
	mu      sync.Mutex
	ring    *EventRing
	dropped int
}

// NewEventQueue returns a queue over a fixed ring of the given
// capacity.
func NewEventQueue(capacity int) *EventQueue {
	return &EventQueue{ring: NewEventRing(capacity)}
}

// Enqueue adds one event, reporting false (and counting a drop) if the
// ring is full.
func (q *EventQueue) Enqueue(ev Event) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.ring.Push(ev) {
		q.dropped++
		return false
	}
	return true
}

// EnqueueAll adds events under a single lock acquisition and returns
// how many fit.
func (q *EventQueue) EnqueueAll(events []Event) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	var n int
	for _, ev := range events {
		if !q.ring.Push(ev) {
			q.dropped += len(events) - n
			return n
		}
		n++
	}
	return n
}

// Drain appends every buffered event to dst under a single lock
// acquisition and returns the extended slice.
func (q *EventQueue) Drain(dst []Event) []Event {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.ring.PopAll(dst)
}

// Dropped returns how many events were rejected by a full ring.
func (q *EventQueue) Dropped() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.dropped
}

// ReserveLog grows the event log's capacity so the next n Submit calls
// append into a single pre-grown region without reallocating.
func (c *Controller) ReserveLog(n int) {
	c.Log = slices.Grow(c.Log, n)
}

// ProcessBatch submits events in order, exactly as n sequential Submit
// calls would — middleware runs per event, crashes drop the remainder
// of the batch into EventsDropped, error logging and liveness
// transitions are per event — but the log grows in one pre-reserved
// append region and callers amortize their own per-event overhead. It
// returns the number of events processed cleanly and the first error.
// Batching is mechanical, not semantic: controller state, log, and
// stats after ProcessBatch are byte-identical to the sequential loop.
func (c *Controller) ProcessBatch(events []Event) (int, error) {
	if len(events) == 0 {
		return 0, nil
	}
	c.ReserveLog(len(events))
	var processed int
	var firstErr error
	for _, ev := range events {
		if err := c.Submit(ev); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		processed++
	}
	return processed, firstErr
}
