package sdn

// Patchable flow-rule program: the repair surface of the automatic
// repair loop (internal/repair, experiment E25). A Program is a small
// prioritized rule table interposed ahead of the controller — each
// rule matches an event signature (the same signatures the fault
// lab's poison classifier uses) and either admits, rewrites, drops,
// or clamps the event. Repairs are synthesized as edits to this
// program: reorder rule priorities, insert a guard rewrite, roll a
// poisoned config push onto a quarantined key prefix, or clamp an
// amplifying event stream to a per-incarnation budget.

import (
	"fmt"
	"sort"
	"strings"

	"sdnbugs/internal/openflow"
)

// Verdict is the program's decision for one event.
type Verdict int

// Verdict values.
const (
	// VerdictPass: the event proceeds unchanged.
	VerdictPass Verdict = iota
	// VerdictRewritten: the event proceeds in rewritten form.
	VerdictRewritten
	// VerdictDropped: the event is discarded by the program.
	VerdictDropped
)

func (v Verdict) String() string {
	switch v {
	case VerdictPass:
		return "pass"
	case VerdictRewritten:
		return "rewritten"
	case VerdictDropped:
		return "dropped"
	default:
		return fmt.Sprintf("verdict-%d", int(v))
	}
}

// ActionKind is what a matched rule does with the event.
type ActionKind int

// Rule actions.
const (
	// ActAllow admits the event unchanged (an explicit pass-through,
	// useful as a reorder target above a broader rule).
	ActAllow ActionKind = iota
	// ActRewrite transforms the event per the rule's Rewrite.
	ActRewrite
	// ActDrop discards the event.
	ActDrop
	// ActClamp admits at most ClampBudget matching events per
	// controller incarnation and drops the rest — the queue-amplifier
	// repair.
	ActClamp
)

func (a ActionKind) String() string {
	switch a {
	case ActAllow:
		return "allow"
	case ActRewrite:
		return "rewrite"
	case ActDrop:
		return "drop"
	case ActClamp:
		return "clamp"
	default:
		return fmt.Sprintf("action-%d", int(a))
	}
}

// Predicate matches an event signature. The zero predicate matches
// every event; each set field narrows the match.
type Predicate struct {
	// Kind restricts the event kind (EventUnknown matches any).
	Kind EventKind `json:"kind"`
	// KeyPrefix matches config events whose key has this prefix.
	KeyPrefix string `json:"key_prefix,omitempty"`
	// Service matches external-call events to this service.
	Service string `json:"service,omitempty"`
	// BroadcastOnly matches only broadcast network frames.
	BroadcastOnly bool `json:"broadcast_only,omitempty"`
	// MatchVlan, when true, matches only network frames tagged VlanID.
	MatchVlan bool `json:"match_vlan,omitempty"`
	VlanID    uint16 `json:"vlan_id,omitempty"`
}

// packetOf decodes the frame carried by a network event.
func packetOf(ev Event) (Packet, bool) {
	pi, ok := ev.Msg.(*openflow.PacketIn)
	if !ok {
		return Packet{}, false
	}
	pkt, err := DecodePacket(pi.Data)
	if err != nil {
		return Packet{}, false
	}
	return pkt, true
}

// Matches reports whether the event satisfies the predicate.
func (p Predicate) Matches(ev Event) bool {
	if p.Kind != EventUnknown && ev.Kind != p.Kind {
		return false
	}
	if p.KeyPrefix != "" && !(ev.Kind == EventConfig && strings.HasPrefix(ev.Key, p.KeyPrefix)) {
		return false
	}
	if p.Service != "" && !(ev.Kind == EventExternalCall && ev.Service == p.Service) {
		return false
	}
	if p.BroadcastOnly || p.MatchVlan {
		pkt, ok := packetOf(ev)
		if !ok {
			return false
		}
		if p.BroadcastOnly && !pkt.IsBroadcast() {
			return false
		}
		if p.MatchVlan && pkt.VlanID != p.VlanID {
			return false
		}
	}
	return true
}

// Rewrite transforms a matched event. Fields are applied
// independently; each applies only to event kinds it is meaningful
// for.
type Rewrite struct {
	// SetKeyPrefix replaces the rule predicate's KeyPrefix in a config
	// event's key — the rollback repair: the push is re-targeted onto a
	// quarantined key, not lost.
	SetKeyPrefix string `json:"set_key_prefix,omitempty"`
	// SetValue replaces a config event's value.
	SetValue string `json:"set_value,omitempty"`
	// StripVlan re-encodes a network frame without its VLAN tag — the
	// guard repair for VLAN-keyed poison signatures.
	StripVlan bool `json:"strip_vlan,omitempty"`
}

// Rule is one prioritized program entry. Higher priorities match
// first; ties break on ID.
type Rule struct {
	ID       string     `json:"id"`
	Priority int        `json:"priority"`
	Match    Predicate  `json:"match"`
	Action   ActionKind `json:"action"`
	// Rewrite parameterizes ActRewrite.
	Rewrite Rewrite `json:"rewrite,omitempty"`
	// ClampBudget parameterizes ActClamp: matching events admitted per
	// controller incarnation (must be ≥ 1 — a zero budget is a shed,
	// not a repair).
	ClampBudget int `json:"clamp_budget,omitempty"`
}

// Program is an ordered flow-rule program. The first matching rule
// decides the event's fate; no match passes the event through.
// Programs are not safe for concurrent use (clamp counters), matching
// the single-threaded controller model.
type Program struct {
	Rules []Rule `json:"rules"`

	// clamped counts matched events per clamp rule in the current
	// controller incarnation.
	clamped map[string]int
}

// NewProgram builds a normalized program from rules.
func NewProgram(rules ...Rule) *Program {
	p := &Program{Rules: append([]Rule(nil), rules...)}
	p.Normalize()
	return p
}

// Clone deep-copies the program with fresh clamp state.
func (p *Program) Clone() *Program {
	if p == nil {
		return NewProgram()
	}
	return NewProgram(p.Rules...)
}

// Normalize sorts rules by descending priority, breaking ties on ID,
// so program behavior and fingerprints are independent of insertion
// order.
func (p *Program) Normalize() {
	sort.SliceStable(p.Rules, func(i, j int) bool {
		if p.Rules[i].Priority != p.Rules[j].Priority {
			return p.Rules[i].Priority > p.Rules[j].Priority
		}
		return p.Rules[i].ID < p.Rules[j].ID
	})
}

// NewIncarnation resets per-incarnation state (clamp counters); the
// supervisor calls it on every controller restart, mirroring the
// fault lab's incarnation semantics.
func (p *Program) NewIncarnation() {
	if p == nil {
		return
	}
	p.clamped = nil
}

// Validate checks program well-formedness: unique non-empty rule IDs,
// known actions, a non-empty rewrite on rewrite rules (with a
// substitutable prefix when SetKeyPrefix is used), and clamp budgets
// of at least one.
func (p *Program) Validate() error {
	if p == nil {
		return nil
	}
	seen := make(map[string]bool, len(p.Rules))
	for i, r := range p.Rules {
		if r.ID == "" {
			return fmt.Errorf("sdn: program rule %d: empty id", i)
		}
		if seen[r.ID] {
			return fmt.Errorf("sdn: program rule %q: duplicate id", r.ID)
		}
		seen[r.ID] = true
		switch r.Action {
		case ActAllow, ActDrop:
		case ActRewrite:
			if r.Rewrite == (Rewrite{}) {
				return fmt.Errorf("sdn: program rule %q: rewrite action with empty rewrite", r.ID)
			}
			if r.Rewrite.SetKeyPrefix != "" && r.Match.KeyPrefix == "" {
				return fmt.Errorf("sdn: program rule %q: SetKeyPrefix needs a KeyPrefix match to substitute", r.ID)
			}
		case ActClamp:
			if r.ClampBudget < 1 {
				return fmt.Errorf("sdn: program rule %q: clamp budget %d < 1", r.ID, r.ClampBudget)
			}
		default:
			return fmt.Errorf("sdn: program rule %q: unknown action %d", r.ID, int(r.Action))
		}
	}
	return nil
}

// Apply runs the event through the program: the first matching rule
// decides. A nil program passes everything.
func (p *Program) Apply(ev Event) (Event, Verdict) {
	if p == nil {
		return ev, VerdictPass
	}
	for i := range p.Rules {
		r := &p.Rules[i]
		if !r.Match.Matches(ev) {
			continue
		}
		switch r.Action {
		case ActAllow:
			return ev, VerdictPass
		case ActDrop:
			return ev, VerdictDropped
		case ActClamp:
			if p.clamped == nil {
				p.clamped = make(map[string]int)
			}
			p.clamped[r.ID]++
			if p.clamped[r.ID] > r.ClampBudget {
				return ev, VerdictDropped
			}
			return ev, VerdictPass
		case ActRewrite:
			out, changed := rewriteEvent(*r, ev)
			if changed {
				return out, VerdictRewritten
			}
			return ev, VerdictPass
		}
	}
	return ev, VerdictPass
}

// rewriteEvent applies a rewrite rule to a matched event, reporting
// whether anything changed.
func rewriteEvent(r Rule, ev Event) (Event, bool) {
	out := ev
	changed := false
	if ev.Kind == EventConfig {
		if r.Rewrite.SetKeyPrefix != "" && r.Match.KeyPrefix != "" && strings.HasPrefix(ev.Key, r.Match.KeyPrefix) {
			out.Key = r.Rewrite.SetKeyPrefix + strings.TrimPrefix(ev.Key, r.Match.KeyPrefix)
			changed = changed || out.Key != ev.Key
		}
		if r.Rewrite.SetValue != "" {
			out.Value = r.Rewrite.SetValue
			changed = changed || out.Value != ev.Value
		}
	}
	if r.Rewrite.StripVlan && ev.Kind == EventNetwork {
		if pi, ok := ev.Msg.(*openflow.PacketIn); ok {
			if pkt, err := DecodePacket(pi.Data); err == nil && pkt.VlanID != 0 {
				pkt.VlanID = 0
				cp := *pi
				cp.Data = EncodePacket(pkt)
				out.Msg = &cp
				changed = true
			}
		}
	}
	return out, changed
}

// Fingerprint is a canonical serialization of the program's rules,
// for byte-identity checks and report stability.
func (p *Program) Fingerprint() string {
	if p == nil || len(p.Rules) == 0 {
		return "empty"
	}
	var b strings.Builder
	for _, r := range p.Rules {
		fmt.Fprintf(&b, "%s|%d|%+v|%s|%+v|%d;", r.ID, r.Priority, r.Match, r.Action, r.Rewrite, r.ClampBudget)
	}
	return b.String()
}
