package sdn

import (
	"errors"
	"fmt"

	"sdnbugs/internal/openflow"
)

// EventKind is one of the four canonical controller input sources of
// the paper's Figure 1.
type EventKind int

// EventKind values.
const (
	EventUnknown EventKind = iota
	EventConfig
	EventNetwork
	EventExternalCall
	EventHardwareReboot
)

// EventKinds lists every concrete kind.
func EventKinds() []EventKind {
	return []EventKind{EventConfig, EventNetwork, EventExternalCall, EventHardwareReboot}
}

func (k EventKind) String() string {
	switch k {
	case EventConfig:
		return "configuration"
	case EventNetwork:
		return "network-event"
	case EventExternalCall:
		return "external-call"
	case EventHardwareReboot:
		return "hardware-reboot"
	default:
		return "unknown"
	}
}

// Event is one controller input.
type Event struct {
	Seq  int
	Kind EventKind
	// Msg carries the OpenFlow message for EventNetwork.
	Msg openflow.Message
	// Key/Value carry a configuration change for EventConfig.
	Key, Value string
	// Service names the external service for EventExternalCall.
	Service string
	// DPID names the rebooted datapath for EventHardwareReboot.
	DPID uint64
}

// Environment models the ecosystem around the controller: versioned
// external services the controller calls into. Version mismatches are
// how ecosystem-interaction bugs manifest (paper §V-A).
type Environment struct {
	// Versions is the deployed version of each external service.
	Versions map[string]int
}

// NewEnvironment returns an environment with the given services at
// version 1.
func NewEnvironment(services ...string) *Environment {
	env := &Environment{Versions: make(map[string]int)}
	for _, s := range services {
		env.Versions[s] = 1
	}
	return env
}

// Clone deep-copies the environment.
func (e *Environment) Clone() *Environment {
	out := &Environment{Versions: make(map[string]int, len(e.Versions))}
	for k, v := range e.Versions {
		out.Versions[k] = v
	}
	return out
}

// State is the controller's liveness state.
type State int

// State values.
const (
	StateRunning State = iota + 1
	StateCrashed
	StateStalled
)

func (s State) String() string {
	switch s {
	case StateRunning:
		return "running"
	case StateCrashed:
		return "crashed"
	case StateStalled:
		return "stalled"
	default:
		return "unknown"
	}
}

// Stats aggregates the controller's health counters. Cost is logical
// time: each event handler reports processing cost in ticks, so tests
// and detectors never depend on wall-clock time.
type Stats struct {
	EventsProcessed int
	EventsDropped   int
	ErrorsLogged    int
	TotalCost       int
	MaxEventCost    int
}

// Controller errors.
var (
	// ErrCrash is returned by an app to signal a fail-stop failure.
	ErrCrash = errors.New("sdn: controller crash")
	// ErrNotRunning is returned when events are submitted to a dead
	// controller.
	ErrNotRunning = errors.New("sdn: controller not running")
)

// App is a control application. HandleEvent returns the processing
// cost in ticks and an error; wrapping ErrCrash makes the failure
// fail-stop.
type App interface {
	Name() string
	HandleEvent(c *Controller, ev Event) (cost int, err error)
}

// Middleware wraps event handling — the fault-injection hook.
type Middleware func(HandlerFunc) HandlerFunc

// HandlerFunc is the middleware-visible handler signature.
type HandlerFunc func(c *Controller, ev Event) (int, error)

// Controller is the event-driven SDN controller runtime.
type Controller struct {
	Net *Network
	Env *Environment
	App App

	// Config is the controller's live configuration.
	Config map[string]string

	// Log is the ordered record of processed events (for replay-based
	// recovery).
	Log []Event

	// ErrorLog holds logged (non-fatal) error messages.
	ErrorLog []string

	State State
	Stats Stats

	handler HandlerFunc
}

// NewController wires a controller to a network, environment, and app,
// with optional middleware (outermost first).
func NewController(net *Network, env *Environment, app App, mw ...Middleware) *Controller {
	c := &Controller{
		Net:    net,
		Env:    env,
		App:    app,
		Config: make(map[string]string),
		State:  StateRunning,
	}
	h := func(ctl *Controller, ev Event) (int, error) {
		return ctl.App.HandleEvent(ctl, ev)
	}
	for i := len(mw) - 1; i >= 0; i-- {
		h = mw[i](h)
	}
	c.handler = h
	return c
}

// stallCostThreshold is the per-event cost above which the controller
// is considered stalled (temporarily frozen, §IV).
const stallCostThreshold = 1000

// Submit processes one event through the app (and any middleware),
// recording it in the event log first.
func (c *Controller) Submit(ev Event) error {
	if c.State == StateCrashed {
		c.Stats.EventsDropped++
		return ErrNotRunning
	}
	ev.Seq = len(c.Log)
	c.Log = append(c.Log, ev)
	return c.process(ev)
}

// Reprocess handles an already-logged event again without re-recording
// it — the primitive replay- and checkpoint-based recovery builds on.
func (c *Controller) Reprocess(ev Event) error {
	if c.State == StateCrashed {
		c.Stats.EventsDropped++
		return ErrNotRunning
	}
	return c.process(ev)
}

// process runs one event through the handler chain and updates the
// health counters and liveness state.
func (c *Controller) process(ev Event) error {
	cost, err := c.handler(c, ev)
	if cost < 1 {
		cost = 1
	}
	c.Stats.EventsProcessed++
	c.Stats.TotalCost += cost
	if cost > c.Stats.MaxEventCost {
		c.Stats.MaxEventCost = cost
	}
	if cost >= stallCostThreshold {
		c.State = StateStalled
	} else if c.State == StateStalled {
		c.State = StateRunning
	}
	if err != nil {
		if errors.Is(err, ErrCrash) {
			c.State = StateCrashed
			return fmt.Errorf("sdn: event %d: %w", ev.Seq, err)
		}
		c.ErrorLog = append(c.ErrorLog, err.Error())
		c.Stats.ErrorsLogged++
	}
	return nil
}

// LogError records a non-fatal error message.
func (c *Controller) LogError(format string, args ...any) {
	c.ErrorLog = append(c.ErrorLog, fmt.Sprintf(format, args...))
	c.Stats.ErrorsLogged++
}

// InstallFlow sends a flow-mod to the dataplane.
func (c *Controller) InstallFlow(fm openflow.FlowMod) error {
	return c.Net.ApplyFlowMod(fm)
}

// Restart clears the controller's volatile state (app state is the
// app's business — see App implementations) but keeps the same app and
// middleware, i.e. the same code including its bugs. The event log is
// preserved for replay-based strategies; pass keepLog=false to drop it.
func (c *Controller) Restart(keepLog bool) {
	c.State = StateRunning
	c.Stats = Stats{}
	c.ErrorLog = nil
	c.Config = make(map[string]string)
	if !keepLog {
		c.Log = nil
	}
	if r, ok := c.App.(interface{ Reset() }); ok {
		r.Reset()
	}
}

// MeanEventCost returns average ticks per processed event (0 if none).
func (s Stats) MeanEventCost() float64 {
	if s.EventsProcessed == 0 {
		return 0
	}
	return float64(s.TotalCost) / float64(s.EventsProcessed)
}
