package sdn

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

func TestEventRingFIFO(t *testing.T) {
	r := NewEventRing(4)
	for i := 0; i < 3; i++ {
		if !r.Push(Event{Seq: i}) {
			t.Fatalf("push %d failed", i)
		}
	}
	got := r.PopAll(nil)
	if len(got) != 3 || got[0].Seq != 0 || got[2].Seq != 2 {
		t.Fatalf("popped %+v", got)
	}
	// Wrap around: the ring must stay FIFO across the seam.
	for cycle := 0; cycle < 5; cycle++ {
		for i := 0; i < 3; i++ {
			if !r.Push(Event{Seq: cycle*10 + i}) {
				t.Fatalf("cycle %d push %d failed", cycle, i)
			}
		}
		got = r.PopAll(got[:0])
		for i, ev := range got {
			if ev.Seq != cycle*10+i {
				t.Fatalf("cycle %d: got %+v", cycle, got)
			}
		}
	}
}

func TestEventRingFull(t *testing.T) {
	r := NewEventRing(2)
	if !r.Push(Event{}) || !r.Push(Event{}) {
		t.Fatal("pushes within capacity failed")
	}
	if r.Push(Event{}) {
		t.Fatal("push beyond capacity succeeded")
	}
	if r.Len() != 2 || r.Cap() != 2 {
		t.Fatalf("len=%d cap=%d", r.Len(), r.Cap())
	}
}

func TestEventQueueDrainAndDrops(t *testing.T) {
	q := NewEventQueue(3)
	if n := q.EnqueueAll([]Event{{Seq: 1}, {Seq: 2}, {Seq: 3}, {Seq: 4}}); n != 3 {
		t.Fatalf("enqueued %d, want 3", n)
	}
	if q.Dropped() != 1 {
		t.Fatalf("dropped = %d", q.Dropped())
	}
	got := q.Drain(nil)
	if len(got) != 3 || got[0].Seq != 1 {
		t.Fatalf("drained %+v", got)
	}
	if !q.Enqueue(Event{Seq: 5}) {
		t.Fatal("enqueue after drain failed")
	}
	if got := q.Drain(got[:0]); len(got) != 1 || got[0].Seq != 5 {
		t.Fatalf("drained %+v", got)
	}
}

// batchTestApp deterministically exercises every liveness path: plain
// events, logged errors, stalls, and a crash at a chosen sequence.
func batchTestApp(crashAt int) App {
	n := 0
	return appFunc(func(c *Controller, ev Event) (int, error) {
		n++
		if crashAt > 0 && n == crashAt {
			return 1, fmt.Errorf("boom: %w", ErrCrash)
		}
		switch ev.Seq % 5 {
		case 1:
			return 3, errors.New("transient handler error")
		case 2:
			return 2000, nil // stall
		default:
			return ev.Seq%7 + 1, nil
		}
	})
}

// snapshot captures everything batching must not change.
type ctlSnapshot struct {
	State    State
	Stats    Stats
	Log      []Event
	ErrorLog []string
	Config   map[string]string
	Print    string
}

func snapshotController(c *Controller) ctlSnapshot {
	return ctlSnapshot{
		State:    c.State,
		Stats:    c.Stats,
		Log:      append([]Event(nil), c.Log...),
		ErrorLog: append([]string(nil), c.ErrorLog...),
		Config:   c.Config,
		Print:    fmt.Sprintf("%v|%+v|%d|%d", c.State, c.Stats, len(c.Log), len(c.ErrorLog)),
	}
}

func randomEvents(rng *rand.Rand, n int) []Event {
	kinds := EventKinds()
	events := make([]Event, n)
	for i := range events {
		events[i] = Event{
			Kind:  kinds[rng.Intn(len(kinds))],
			Key:   fmt.Sprintf("k%d", rng.Intn(8)),
			Value: fmt.Sprintf("v%d", rng.Intn(8)),
		}
	}
	return events
}

// ProcessBatch must be observationally identical to N sequential
// Submit calls — state, stats, log, error log, and fingerprint —
// including mid-batch middleware errors and crashes.
func TestProcessBatchEquivalentToSequential(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(60)
		events := randomEvents(rng, n)
		crashAt := 0
		if seed%3 == 0 {
			crashAt = 1 + rng.Intn(n)
		}

		mw := func(next HandlerFunc) HandlerFunc {
			return func(c *Controller, ev Event) (int, error) {
				if ev.Seq%11 == 7 {
					return 1, errors.New("middleware rejected event")
				}
				return next(c, ev)
			}
		}

		netA, _ := LinearTopology(2)
		serial := NewController(netA, NewEnvironment("svc"), batchTestApp(crashAt), mw)
		var serialProcessed int
		var serialErr error
		for _, ev := range events {
			if err := serial.Submit(ev); err != nil {
				if serialErr == nil {
					serialErr = err
				}
				continue
			}
			serialProcessed++
		}

		netB, _ := LinearTopology(2)
		batched := NewController(netB, NewEnvironment("svc"), batchTestApp(crashAt), mw)
		batchProcessed, batchErr := batched.ProcessBatch(events)

		if batchProcessed != serialProcessed {
			t.Fatalf("seed %d: processed %d batched vs %d serial", seed, batchProcessed, serialProcessed)
		}
		if (batchErr == nil) != (serialErr == nil) ||
			(batchErr != nil && batchErr.Error() != serialErr.Error()) {
			t.Fatalf("seed %d: err %v batched vs %v serial", seed, batchErr, serialErr)
		}
		a, b := snapshotController(serial), snapshotController(batched)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: controllers diverged\nserial:  %+v\nbatched: %+v", seed, a, b)
		}
	}
}

// Splitting one event stream into arbitrary sub-batches must not
// change anything either (batch boundaries are invisible).
func TestProcessBatchSplitInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	events := randomEvents(rng, 64)

	run := func(splits []int) ctlSnapshot {
		net, _ := LinearTopology(2)
		c := NewController(net, NewEnvironment("svc"), batchTestApp(0))
		rest := events
		for _, n := range splits {
			if n > len(rest) {
				n = len(rest)
			}
			if _, err := c.ProcessBatch(rest[:n]); err != nil {
				t.Fatal(err)
			}
			rest = rest[n:]
		}
		if _, err := c.ProcessBatch(rest); err != nil {
			t.Fatal(err)
		}
		return snapshotController(c)
	}

	want := run(nil) // one big batch
	for _, splits := range [][]int{{1}, {63}, {7, 9, 3}, {32, 32}, {1, 1, 1, 61}} {
		if got := run(splits); !reflect.DeepEqual(got, want) {
			t.Fatalf("splits %v diverged from single batch", splits)
		}
	}
}

func TestProcessBatchSingleAppendRegion(t *testing.T) {
	net, _ := LinearTopology(1)
	c := NewController(net, NewEnvironment(), batchTestApp(0))
	events := randomEvents(rand.New(rand.NewSource(7)), 100)
	c.ReserveLog(len(events))
	capBefore := cap(c.Log)
	if _, err := c.ProcessBatch(events); err != nil {
		t.Fatal(err)
	}
	if cap(c.Log) != capBefore {
		t.Fatalf("log reallocated mid-batch: cap %d -> %d", capBefore, cap(c.Log))
	}
	if len(c.Log) != len(events) {
		t.Fatalf("log len = %d, want %d", len(c.Log), len(events))
	}
}
