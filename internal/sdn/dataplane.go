// Package sdn implements the simulated SDN ecosystem of the paper's
// Figure 1: a dataplane of OpenFlow switches and hosts, an event-driven
// controller framework reacting to the four canonical event sources
// (configuration, network events, external calls, hardware reboots),
// and a learning-switch application on top. The fault-injection lab
// (internal/faultlab) and the recovery frameworks (internal/recovery)
// drive this substrate to reproduce Table VII empirically.
package sdn

import (
	"errors"
	"fmt"
	"sort"

	"sdnbugs/internal/openflow"
)

// Packet is a simulated Ethernet frame.
type Packet struct {
	EthSrc  uint64
	EthDst  uint64
	EthType uint16
	VlanID  uint16
	Payload []byte
}

// BroadcastMAC is the all-ones destination address.
const BroadcastMAC uint64 = 0xffffffffffff

// IsBroadcast reports whether the packet is a broadcast frame.
func (p Packet) IsBroadcast() bool { return p.EthDst == BroadcastMAC }

// FlowEntry is one row of a switch's flow table.
type FlowEntry struct {
	Priority uint16
	Match    openflow.Match
	Actions  []openflow.Action
}

// matches reports whether the entry matches a packet arriving on
// inPort.
func (e FlowEntry) matches(p Packet, inPort uint32) bool {
	m := e.Match
	if m.MatchInPort && m.InPort != inPort {
		return false
	}
	if m.EthSrc != 0 && m.EthSrc != p.EthSrc {
		return false
	}
	if m.EthDst != 0 && m.EthDst != p.EthDst {
		return false
	}
	if m.EthType != 0 && m.EthType != p.EthType {
		return false
	}
	if m.VlanID != 0 && m.VlanID != p.VlanID {
		return false
	}
	return true
}

// FlowTable holds prioritized flow entries.
type FlowTable struct {
	entries []FlowEntry
}

// Add inserts an entry, replacing an identical-match same-priority one.
func (t *FlowTable) Add(e FlowEntry) {
	for i, old := range t.entries {
		if old.Priority == e.Priority && old.Match == e.Match {
			t.entries[i] = e
			return
		}
	}
	t.entries = append(t.entries, e)
	// Highest priority first; stable order by insertion otherwise.
	sort.SliceStable(t.entries, func(a, b int) bool {
		return t.entries[a].Priority > t.entries[b].Priority
	})
}

// Delete removes entries with the given match (any priority) and
// returns how many were removed.
func (t *FlowTable) Delete(m openflow.Match) int {
	kept := t.entries[:0]
	removed := 0
	for _, e := range t.entries {
		if e.Match == m {
			removed++
			continue
		}
		kept = append(kept, e)
	}
	t.entries = kept
	return removed
}

// Clear removes every entry.
func (t *FlowTable) Clear() { t.entries = nil }

// Entries returns a deep copy of the table in priority order, for
// checkpoint-based recovery: mutating the copy (or its actions) never
// aliases live dataplane state.
func (t *FlowTable) Entries() []FlowEntry {
	if len(t.entries) == 0 {
		return nil
	}
	out := make([]FlowEntry, len(t.entries))
	for i, e := range t.entries {
		e.Actions = append([]openflow.Action(nil), e.Actions...)
		out[i] = e
	}
	return out
}

// Len returns the number of entries.
func (t *FlowTable) Len() int { return len(t.entries) }

// Lookup returns the highest-priority matching entry, or nil.
func (t *FlowTable) Lookup(p Packet, inPort uint32) *FlowEntry {
	for i := range t.entries {
		if t.entries[i].matches(p, inPort) {
			return &t.entries[i]
		}
	}
	return nil
}

// Switch is one simulated datapath.
type Switch struct {
	DPID     uint64
	NumPorts uint32
	Table    FlowTable
	portUp   []bool
}

// NewSwitch builds a switch with all ports up. Port numbers are
// 1-based, as in OpenFlow.
func NewSwitch(dpid uint64, numPorts uint32) *Switch {
	up := make([]bool, numPorts+1)
	for i := range up {
		up[i] = true
	}
	return &Switch{DPID: dpid, NumPorts: numPorts, portUp: up}
}

// PortUp reports whether the port is administratively up.
func (s *Switch) PortUp(port uint32) bool {
	return port >= 1 && port <= s.NumPorts && s.portUp[port]
}

// SetPort sets a port's link state.
func (s *Switch) SetPort(port uint32, up bool) error {
	if port < 1 || port > s.NumPorts {
		return fmt.Errorf("sdn: switch %d has no port %d", s.DPID, port)
	}
	s.portUp[port] = up
	return nil
}

// Reboot clears the flow table and restores all ports, as a power
// cycle would.
func (s *Switch) Reboot() {
	s.Table.Clear()
	for i := range s.portUp {
		s.portUp[i] = true
	}
}

// PortRef names one switch port.
type PortRef struct {
	DPID uint64
	Port uint32
}

// Host is an end station attached to a switch port.
type Host struct {
	MAC    uint64
	Attach PortRef
}

// Network is the dataplane: switches, inter-switch links, and hosts.
type Network struct {
	switches map[uint64]*Switch
	// links maps a port to its peer port (bidirectional).
	links map[PortRef]PortRef
	hosts map[uint64]Host // by MAC
	// hostAt maps a port to the attached host's MAC.
	hostAt map[PortRef]uint64

	// PacketIns collects punts to the controller generated during
	// injection; the controller drains this.
	PacketIns []openflow.PacketIn
	// Deliveries accumulates every host delivery; drivers drain it.
	Deliveries []Delivery
}

// Network errors.
var (
	ErrNoSwitch = errors.New("sdn: no such switch")
	ErrNoHost   = errors.New("sdn: no such host")
	ErrBadLink  = errors.New("sdn: invalid link")
)

// NewNetwork returns an empty dataplane.
func NewNetwork() *Network {
	return &Network{
		switches: make(map[uint64]*Switch),
		links:    make(map[PortRef]PortRef),
		hosts:    make(map[uint64]Host),
		hostAt:   make(map[PortRef]uint64),
	}
}

// AddSwitch registers a switch.
func (n *Network) AddSwitch(dpid uint64, numPorts uint32) *Switch {
	sw := NewSwitch(dpid, numPorts)
	n.switches[dpid] = sw
	return sw
}

// Switch returns a switch by datapath id.
func (n *Network) Switch(dpid uint64) (*Switch, error) {
	sw, ok := n.switches[dpid]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoSwitch, dpid)
	}
	return sw, nil
}

// Switches returns all datapath ids in ascending order.
func (n *Network) Switches() []uint64 {
	out := make([]uint64, 0, len(n.switches))
	for id := range n.switches {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AddLink connects two switch ports bidirectionally.
func (n *Network) AddLink(a, b PortRef) error {
	for _, ref := range []PortRef{a, b} {
		sw, ok := n.switches[ref.DPID]
		if !ok {
			return fmt.Errorf("%w: switch %d", ErrBadLink, ref.DPID)
		}
		if ref.Port < 1 || ref.Port > sw.NumPorts {
			return fmt.Errorf("%w: switch %d has no port %d", ErrBadLink, ref.DPID, ref.Port)
		}
	}
	n.links[a] = b
	n.links[b] = a
	return nil
}

// AddHost attaches a host to a switch port.
func (n *Network) AddHost(mac uint64, at PortRef) error {
	if _, ok := n.switches[at.DPID]; !ok {
		return fmt.Errorf("%w: %d", ErrNoSwitch, at.DPID)
	}
	n.hosts[mac] = Host{MAC: mac, Attach: at}
	n.hostAt[at] = mac
	return nil
}

// Hosts returns all host MACs in ascending order.
func (n *Network) Hosts() []uint64 {
	out := make([]uint64, 0, len(n.hosts))
	for mac := range n.hosts {
		out = append(out, mac)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Delivery records a packet arriving at a host.
type Delivery struct {
	MAC    uint64
	Packet Packet
}

// maxHops bounds forwarding walks to break accidental loops.
const maxHops = 64

// InjectFromHost sends a packet from the named host into the network
// and returns every host delivery it produces. Table misses punt to
// n.PacketIns and deliver nothing for that branch.
func (n *Network) InjectFromHost(srcMAC uint64, p Packet) ([]Delivery, error) {
	h, ok := n.hosts[srcMAC]
	if !ok {
		return nil, fmt.Errorf("%w: %012x", ErrNoHost, srcMAC)
	}
	p.EthSrc = srcMAC
	mark := len(n.Deliveries)
	n.forward(h.Attach, p, 0)
	return n.Deliveries[mark:], nil
}

// forward processes a packet arriving at a switch port.
func (n *Network) forward(at PortRef, p Packet, hops int) {
	if hops > maxHops {
		return
	}
	sw, ok := n.switches[at.DPID]
	if !ok || !sw.PortUp(at.Port) {
		return
	}
	entry := sw.Table.Lookup(p, at.Port)
	if entry == nil {
		// Table miss: punt to controller.
		n.PacketIns = append(n.PacketIns, openflow.PacketIn{
			DatapathID: sw.DPID,
			InPort:     at.Port,
			Reason:     0,
			Data:       encodePacket(p),
		})
		return
	}
	cur := p
	for _, a := range entry.Actions {
		switch a.Type {
		case openflow.ActionSetVlan:
			cur.VlanID = a.Vlan
		case openflow.ActionDrop:
			return
		case openflow.ActionOutput:
			switch a.Port {
			case openflow.PortFlood:
				for port := uint32(1); port <= sw.NumPorts; port++ {
					if port == at.Port || !sw.PortUp(port) {
						continue
					}
					n.emit(PortRef{sw.DPID, port}, cur, hops)
				}
			case openflow.PortController:
				n.PacketIns = append(n.PacketIns, openflow.PacketIn{
					DatapathID: sw.DPID, InPort: at.Port, Reason: 1,
					Data: encodePacket(cur),
				})
			default:
				// OpenFlow semantics: a packet is never sent back out
				// of its ingress port unless explicitly requested
				// (OFPP_IN_PORT, which this subset does not model).
				if a.Port != at.Port && sw.PortUp(a.Port) {
					n.emit(PortRef{sw.DPID, a.Port}, cur, hops)
				}
			}
		}
	}
}

// emit sends a packet out of a switch port: to an attached host, over
// a link, or into the void.
func (n *Network) emit(from PortRef, p Packet, hops int) {
	if mac, ok := n.hostAt[from]; ok {
		if p.IsBroadcast() || p.EthDst == mac {
			n.Deliveries = append(n.Deliveries, Delivery{MAC: mac, Packet: p})
		}
		return
	}
	if peer, ok := n.links[from]; ok {
		n.forward(peer, p, hops+1)
	}
}

// ApplyPacketOut executes a controller packet-out: the carried packet
// is pushed out of the named switch according to the actions, returning
// any host deliveries. New table misses downstream punt to PacketIns.
func (n *Network) ApplyPacketOut(po openflow.PacketOut) ([]Delivery, error) {
	sw, err := n.Switch(po.DatapathID)
	if err != nil {
		return nil, err
	}
	pkt, err := DecodePacket(po.Data)
	if err != nil {
		return nil, err
	}
	mark := len(n.Deliveries)
	cur := pkt
	for _, a := range po.Actions {
		switch a.Type {
		case openflow.ActionSetVlan:
			cur.VlanID = a.Vlan
		case openflow.ActionDrop:
			return n.Deliveries[mark:], nil
		case openflow.ActionOutput:
			if a.Port == openflow.PortFlood {
				for port := uint32(1); port <= sw.NumPorts; port++ {
					if port == po.InPort || !sw.PortUp(port) {
						continue
					}
					n.emit(PortRef{sw.DPID, port}, cur, 0)
				}
			} else if a.Port != po.InPort && sw.PortUp(a.Port) {
				// Never reflect out of the declared ingress port.
				n.emit(PortRef{sw.DPID, a.Port}, cur, 0)
			}
		}
	}
	return n.Deliveries[mark:], nil
}

// DrainPacketIns returns and clears the accumulated punts.
func (n *Network) DrainPacketIns() []openflow.PacketIn {
	out := n.PacketIns
	n.PacketIns = nil
	return out
}

// DrainDeliveries returns and clears the accumulated host deliveries.
func (n *Network) DrainDeliveries() []Delivery {
	out := n.Deliveries
	n.Deliveries = nil
	return out
}

// ApplyFlowMod executes a controller flow-mod against the dataplane.
func (n *Network) ApplyFlowMod(fm openflow.FlowMod) error {
	sw, err := n.Switch(fm.DatapathID)
	if err != nil {
		return err
	}
	switch fm.Command {
	case openflow.FlowAdd:
		sw.Table.Add(FlowEntry{Priority: fm.Priority, Match: fm.Match, Actions: fm.Actions})
	case openflow.FlowDelete:
		sw.Table.Delete(fm.Match)
	default:
		return fmt.Errorf("sdn: unknown flow-mod command %d", fm.Command)
	}
	return nil
}

// encodePacket serializes a Packet into PacketIn data bytes.
func encodePacket(p Packet) []byte {
	out := make([]byte, 20+len(p.Payload))
	putUint48(out[0:], p.EthDst)
	putUint48(out[6:], p.EthSrc)
	out[12] = byte(p.EthType >> 8)
	out[13] = byte(p.EthType)
	out[14] = byte(p.VlanID >> 8)
	out[15] = byte(p.VlanID)
	copy(out[20:], p.Payload)
	return out
}

// DecodePacket parses PacketIn data bytes back into a Packet.
func DecodePacket(b []byte) (Packet, error) {
	if len(b) < 20 {
		return Packet{}, errors.New("sdn: packet too short")
	}
	return Packet{
		EthDst:  getUint48(b[0:]),
		EthSrc:  getUint48(b[6:]),
		EthType: uint16(b[12])<<8 | uint16(b[13]),
		VlanID:  uint16(b[14])<<8 | uint16(b[15]),
		Payload: append([]byte(nil), b[20:]...),
	}, nil
}

func putUint48(b []byte, v uint64) {
	b[0] = byte(v >> 40)
	b[1] = byte(v >> 32)
	b[2] = byte(v >> 24)
	b[3] = byte(v >> 16)
	b[4] = byte(v >> 8)
	b[5] = byte(v)
}

func getUint48(b []byte) uint64 {
	return uint64(b[0])<<40 | uint64(b[1])<<32 | uint64(b[2])<<24 |
		uint64(b[3])<<16 | uint64(b[4])<<8 | uint64(b[5])
}

// EncodePacket serializes a Packet into PacketIn/PacketOut data bytes
// (the inverse of DecodePacket). Exposed for tools that rewrite
// in-flight events, e.g. transform-based recovery.
func EncodePacket(p Packet) []byte { return encodePacket(p) }

// HostAttachment returns the switch port the host is attached to.
func (n *Network) HostAttachment(mac uint64) (PortRef, error) {
	h, ok := n.hosts[mac]
	if !ok {
		return PortRef{}, fmt.Errorf("%w: %012x", ErrNoHost, mac)
	}
	return h.Attach, nil
}
