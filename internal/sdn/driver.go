package sdn

import (
	"fmt"
)

// Driver couples a controller to its network, pumping punted packets
// through the control loop until the dataplane is quiescent — the
// reactive-forwarding cycle of a real controller deployment.
type Driver struct {
	C *Controller
}

// maxControlRounds bounds the packet-in pump per injected packet.
const maxControlRounds = 32

// SendPacket injects a packet from a host and runs the control loop to
// quiescence, returning all host deliveries caused by the packet.
// A crashed controller leaves punts unserved (packets blackhole), which
// is exactly the availability failure the detectors look for.
func (d *Driver) SendPacket(srcMAC uint64, p Packet) ([]Delivery, error) {
	net := d.C.Net
	net.DrainDeliveries()
	if _, err := net.InjectFromHost(srcMAC, p); err != nil {
		return nil, err
	}
	for round := 0; round < maxControlRounds; round++ {
		pis := net.DrainPacketIns()
		if len(pis) == 0 {
			break
		}
		// DrainPacketIns transfers ownership, so events can point into
		// the drained slice instead of heap-copying each punt; the log
		// region for the round is reserved up front.
		d.C.ReserveLog(len(pis))
		for i := range pis {
			if d.C.State == StateCrashed {
				// Dead controller: punts go unanswered.
				return net.DrainDeliveries(), nil
			}
			if err := d.C.Submit(Event{Kind: EventNetwork, Msg: &pis[i]}); err != nil {
				// Crash while handling: stop pumping, traffic is lost.
				return net.DrainDeliveries(), nil
			}
		}
	}
	return net.DrainDeliveries(), nil
}

// Ping sends a unicast packet from src to dst and reports whether dst
// received it.
func (d *Driver) Ping(src, dst uint64) (bool, error) {
	deliveries, err := d.SendPacket(src, Packet{EthDst: dst, EthType: 0x0800})
	if err != nil {
		return false, err
	}
	for _, del := range deliveries {
		if del.MAC == dst {
			return true, nil
		}
	}
	return false, nil
}

// Broadcast sends a broadcast from src and returns the set of hosts
// that received it.
func (d *Driver) Broadcast(src uint64) (map[uint64]bool, error) {
	deliveries, err := d.SendPacket(src, Packet{EthDst: BroadcastMAC, EthType: 0x0806})
	if err != nil {
		return nil, err
	}
	got := make(map[uint64]bool)
	for _, del := range deliveries {
		got[del.MAC] = true
	}
	return got, nil
}

// ConnectivityReport summarizes a full-mesh reachability check.
type ConnectivityReport struct {
	Pairs       int
	Reachable   int
	BroadcastOK bool
}

// FullConnectivity reports unicast reachability over every ordered
// host pair (warming each pair once so reactive flows install) plus a
// broadcast check from the first host.
func (d *Driver) FullConnectivity() (ConnectivityReport, error) {
	hosts := d.C.Net.Hosts()
	var rep ConnectivityReport
	if len(hosts) < 2 {
		return rep, fmt.Errorf("sdn: connectivity needs >= 2 hosts, have %d", len(hosts))
	}
	// Warm-up: broadcast from everyone so MACs are learned.
	for _, src := range hosts {
		if _, err := d.Broadcast(src); err != nil {
			return rep, err
		}
	}
	for _, src := range hosts {
		for _, dst := range hosts {
			if src == dst {
				continue
			}
			rep.Pairs++
			ok, err := d.Ping(src, dst)
			if err != nil {
				return rep, err
			}
			if ok {
				rep.Reachable++
			}
		}
	}
	got, err := d.Broadcast(hosts[0])
	if err != nil {
		return rep, err
	}
	rep.BroadcastOK = len(got) == len(hosts)-1
	return rep, nil
}

// LinearTopology builds N switches in a line with one host per switch:
// host i (MAC 0x10+i) on port 1 of switch i; inter-switch links use
// ports 2 (towards lower dpid) and 3 (towards higher).
func LinearTopology(n int) (*Network, error) {
	if n < 1 {
		return nil, fmt.Errorf("sdn: need at least 1 switch, got %d", n)
	}
	net := NewNetwork()
	for i := 1; i <= n; i++ {
		net.AddSwitch(uint64(i), 3)
		if err := net.AddHost(uint64(0x10+i), PortRef{uint64(i), 1}); err != nil {
			return nil, err
		}
	}
	for i := 1; i < n; i++ {
		if err := net.AddLink(PortRef{uint64(i), 3}, PortRef{uint64(i + 1), 2}); err != nil {
			return nil, err
		}
	}
	return net, nil
}
