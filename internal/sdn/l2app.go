package sdn

import (
	"fmt"
	"strconv"

	"sdnbugs/internal/openflow"
)

// L2Switch is the reference control application: a reactive learning
// switch with VLAN configuration, external telemetry calls, and
// reboot reconciliation — enough surface to express every root-cause
// class of the taxonomy as an injectable bug.
type L2Switch struct {
	// macTable[dpid][mac] = port where mac was learned.
	macTable map[uint64]map[uint64]uint32
	// ExpectedVersions is the service API version the app was built
	// against; mismatches with the live Environment surface as
	// ecosystem errors.
	ExpectedVersions map[string]int
}

var _ App = (*L2Switch)(nil)

// NewL2Switch builds the app expecting the given service versions.
func NewL2Switch(expected map[string]int) *L2Switch {
	app := &L2Switch{ExpectedVersions: make(map[string]int)}
	for k, v := range expected {
		app.ExpectedVersions[k] = v
	}
	app.Reset()
	return app
}

// Name implements App.
func (a *L2Switch) Name() string { return "l2-switch" }

// Reset clears learned state (called on controller restart).
func (a *L2Switch) Reset() {
	a.macTable = make(map[uint64]map[uint64]uint32)
}

// KnownMACs returns how many MACs are learned at the switch.
func (a *L2Switch) KnownMACs(dpid uint64) int { return len(a.macTable[dpid]) }

// Snapshot returns a deep copy of the learned MAC tables, for
// checkpoint-based recovery (see internal/supervise).
func (a *L2Switch) Snapshot() any {
	return copyMACTable(a.macTable)
}

// RestoreSnapshot replaces the learned state with a value previously
// returned by Snapshot. Unknown snapshot types are ignored, leaving the
// app in its post-Reset state.
func (a *L2Switch) RestoreSnapshot(s any) {
	if m, ok := s.(map[uint64]map[uint64]uint32); ok {
		a.macTable = copyMACTable(m)
	}
}

func copyMACTable(m map[uint64]map[uint64]uint32) map[uint64]map[uint64]uint32 {
	out := make(map[uint64]map[uint64]uint32, len(m))
	for dpid, macs := range m {
		cp := make(map[uint64]uint32, len(macs))
		for mac, port := range macs {
			cp[mac] = port
		}
		out[dpid] = cp
	}
	return out
}

// HandleEvent implements App.
func (a *L2Switch) HandleEvent(c *Controller, ev Event) (int, error) {
	switch ev.Kind {
	case EventNetwork:
		return a.handleNetwork(c, ev)
	case EventConfig:
		return a.handleConfig(c, ev)
	case EventExternalCall:
		return a.handleExternal(c, ev)
	case EventHardwareReboot:
		return a.handleReboot(c, ev)
	default:
		return 1, fmt.Errorf("l2-switch: unknown event kind %v", ev.Kind)
	}
}

func (a *L2Switch) handleNetwork(c *Controller, ev Event) (int, error) {
	switch msg := ev.Msg.(type) {
	case *openflow.PacketIn:
		return a.handlePacketIn(c, msg)
	case *openflow.PortStatus:
		return a.handlePortStatus(c, msg)
	case *openflow.FlowRemoved:
		// Re-learn on next packet: forget entries matching the rule.
		if tbl, ok := a.macTable[msg.DatapathID]; ok && msg.Match.EthDst != 0 {
			delete(tbl, msg.Match.EthDst)
		}
		return 1, nil
	case *openflow.EchoRequest:
		return 1, nil
	default:
		return 1, fmt.Errorf("l2-switch: unhandled message %v", ev.Msg.Type())
	}
}

func (a *L2Switch) handlePacketIn(c *Controller, pi *openflow.PacketIn) (int, error) {
	pkt, err := DecodePacket(pi.Data)
	if err != nil {
		return 1, fmt.Errorf("l2-switch: %w", err)
	}
	dpid := pi.DatapathID
	if a.macTable[dpid] == nil {
		a.macTable[dpid] = make(map[uint64]uint32)
	}
	a.macTable[dpid][pkt.EthSrc] = pi.InPort

	if pkt.IsBroadcast() {
		// Broadcasts stay reactive (no flood rule): the controller must
		// see them both to keep learning source MACs and because flood
		// scope is policy (mirroring, slicing) that can change per
		// packet.
		_, err := c.Net.ApplyPacketOut(openflow.PacketOut{
			DatapathID: dpid, InPort: pi.InPort,
			Actions: []openflow.Action{{Type: openflow.ActionOutput, Port: openflow.PortFlood}},
			Data:    pi.Data,
		})
		return 2, err
	}

	if port, ok := a.macTable[dpid][pkt.EthDst]; ok {
		if err := c.InstallFlow(openflow.FlowMod{
			DatapathID: dpid,
			Command:    openflow.FlowAdd,
			Priority:   10,
			Match:      openflow.Match{EthDst: pkt.EthDst},
			Actions:    []openflow.Action{{Type: openflow.ActionOutput, Port: port}},
		}); err != nil {
			return 2, fmt.Errorf("l2-switch: install flow: %w", err)
		}
		_, err := c.Net.ApplyPacketOut(openflow.PacketOut{
			DatapathID: dpid, InPort: pi.InPort,
			Actions: []openflow.Action{{Type: openflow.ActionOutput, Port: port}},
			Data:    pi.Data,
		})
		return 3, err
	}

	// Unknown destination: flood without installing state.
	_, err = c.Net.ApplyPacketOut(openflow.PacketOut{
		DatapathID: dpid, InPort: pi.InPort,
		Actions: []openflow.Action{{Type: openflow.ActionOutput, Port: openflow.PortFlood}},
		Data:    pi.Data,
	})
	return 2, err
}

func (a *L2Switch) handlePortStatus(c *Controller, ps *openflow.PortStatus) (int, error) {
	sw, err := c.Net.Switch(ps.DatapathID)
	if err != nil {
		return 1, fmt.Errorf("l2-switch: port status: %w", err)
	}
	if err := sw.SetPort(ps.Port, ps.Up); err != nil {
		return 1, fmt.Errorf("l2-switch: port status: %w", err)
	}
	if !ps.Up {
		// Forget MACs learned on the dead port and their flows.
		for mac, port := range a.macTable[ps.DatapathID] {
			if port == ps.Port {
				delete(a.macTable[ps.DatapathID], mac)
				sw.Table.Delete(openflow.Match{EthDst: mac})
			}
		}
	}
	return 2, nil
}

// handleConfig validates and applies one configuration key. Supported
// keys: "vlan.<name>" (1..4094), "flood.enabled" (bool), and free-form
// "app.*" keys.
func (a *L2Switch) handleConfig(c *Controller, ev Event) (int, error) {
	switch {
	case len(ev.Key) > 5 && ev.Key[:5] == "vlan.":
		v, err := strconv.Atoi(ev.Value)
		if err != nil || v < 1 || v > 4094 {
			return 1, fmt.Errorf("l2-switch: invalid vlan %q for %s", ev.Value, ev.Key)
		}
	case ev.Key == "flood.enabled":
		if ev.Value != "true" && ev.Value != "false" {
			return 1, fmt.Errorf("l2-switch: invalid bool %q for %s", ev.Value, ev.Key)
		}
	}
	c.Config[ev.Key] = ev.Value
	return 2, nil
}

// handleExternal performs one call into an external service, checking
// the API version against expectations.
func (a *L2Switch) handleExternal(c *Controller, ev Event) (int, error) {
	live, ok := c.Env.Versions[ev.Service]
	if !ok {
		return 1, fmt.Errorf("l2-switch: unknown external service %q", ev.Service)
	}
	expected, ok := a.ExpectedVersions[ev.Service]
	if !ok {
		expected = live
	}
	if live != expected {
		return 2, fmt.Errorf("l2-switch: %s API v%d incompatible with expected v%d",
			ev.Service, live, expected)
	}
	return 2, nil
}

// handleReboot reconciles a datapath after a power cycle: clear learned
// state for it and reinstall nothing (reactive re-learning).
func (a *L2Switch) handleReboot(c *Controller, ev Event) (int, error) {
	sw, err := c.Net.Switch(ev.DPID)
	if err != nil {
		return 1, fmt.Errorf("l2-switch: reboot: %w", err)
	}
	sw.Reboot()
	delete(a.macTable, ev.DPID)
	return 5, nil
}
