package sdn

import (
	"errors"
	"testing"
	"testing/quick"

	"sdnbugs/internal/openflow"
)

func TestFlowTableMatchSemantics(t *testing.T) {
	var tbl FlowTable
	tbl.Add(FlowEntry{Priority: 1, Match: openflow.Match{}, Actions: []openflow.Action{{Type: openflow.ActionDrop}}})
	tbl.Add(FlowEntry{Priority: 10, Match: openflow.Match{EthDst: 0x22},
		Actions: []openflow.Action{{Type: openflow.ActionOutput, Port: 2}}})
	tbl.Add(FlowEntry{Priority: 5, Match: openflow.Match{EthType: 0x0806},
		Actions: []openflow.Action{{Type: openflow.ActionOutput, Port: openflow.PortFlood}}})

	// Highest priority wins.
	e := tbl.Lookup(Packet{EthDst: 0x22, EthType: 0x0806}, 1)
	if e == nil || e.Priority != 10 {
		t.Fatalf("lookup = %+v, want priority 10", e)
	}
	// Fallthrough to wildcard.
	e = tbl.Lookup(Packet{EthDst: 0x99}, 1)
	if e == nil || e.Priority != 1 {
		t.Fatalf("wildcard lookup = %+v", e)
	}
	// In-port matching.
	tbl.Add(FlowEntry{Priority: 20, Match: openflow.Match{MatchInPort: true, InPort: 7}})
	if e := tbl.Lookup(Packet{}, 7); e == nil || e.Priority != 20 {
		t.Error("in-port match failed")
	}
	if e := tbl.Lookup(Packet{}, 8); e != nil && e.Priority == 20 {
		t.Error("in-port mismatch matched")
	}
}

func TestFlowTableAddReplaceDelete(t *testing.T) {
	var tbl FlowTable
	m := openflow.Match{EthDst: 0x11}
	tbl.Add(FlowEntry{Priority: 5, Match: m, Actions: []openflow.Action{{Type: openflow.ActionOutput, Port: 1}}})
	tbl.Add(FlowEntry{Priority: 5, Match: m, Actions: []openflow.Action{{Type: openflow.ActionOutput, Port: 9}}})
	if tbl.Len() != 1 {
		t.Fatalf("replace failed, len = %d", tbl.Len())
	}
	if e := tbl.Lookup(Packet{EthDst: 0x11}, 1); e.Actions[0].Port != 9 {
		t.Error("replacement did not take effect")
	}
	if n := tbl.Delete(m); n != 1 {
		t.Errorf("deleted %d, want 1", n)
	}
	if tbl.Len() != 0 {
		t.Error("table not empty after delete")
	}
}

func TestFlowTableDeterministicProperty(t *testing.T) {
	// Same packet, same table => same result, always.
	var tbl FlowTable
	tbl.Add(FlowEntry{Priority: 3, Match: openflow.Match{EthType: 1}})
	tbl.Add(FlowEntry{Priority: 3, Match: openflow.Match{VlanID: 2}})
	f := func(dst uint64, ethType, vlan uint16, port uint32) bool {
		p := Packet{EthDst: dst, EthType: ethType, VlanID: vlan}
		a := tbl.Lookup(p, port)
		b := tbl.Lookup(p, port)
		return a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPacketCodecRoundTrip(t *testing.T) {
	f := func(src, dst uint64, ethType, vlan uint16, payload []byte) bool {
		p := Packet{
			EthSrc: src & 0xffffffffffff, EthDst: dst & 0xffffffffffff,
			EthType: ethType, VlanID: vlan, Payload: payload,
		}
		got, err := DecodePacket(encodePacket(p))
		if err != nil {
			return false
		}
		if got.EthSrc != p.EthSrc || got.EthDst != p.EthDst ||
			got.EthType != p.EthType || got.VlanID != p.VlanID {
			return false
		}
		if len(got.Payload) != len(p.Payload) {
			return false
		}
		for i := range got.Payload {
			if got.Payload[i] != p.Payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if _, err := DecodePacket([]byte{1, 2}); err == nil {
		t.Error("want error for short packet")
	}
}

func TestSwitchPorts(t *testing.T) {
	sw := NewSwitch(1, 4)
	if !sw.PortUp(1) || !sw.PortUp(4) {
		t.Error("ports should start up")
	}
	if sw.PortUp(0) || sw.PortUp(5) {
		t.Error("out-of-range ports must report down")
	}
	if err := sw.SetPort(2, false); err != nil {
		t.Fatal(err)
	}
	if sw.PortUp(2) {
		t.Error("port 2 should be down")
	}
	if err := sw.SetPort(9, false); err == nil {
		t.Error("want error for bad port")
	}
	sw.Table.Add(FlowEntry{Priority: 1})
	sw.Reboot()
	if sw.Table.Len() != 0 || !sw.PortUp(2) {
		t.Error("reboot should clear table and restore ports")
	}
}

func newRunningController(t *testing.T, nSwitches int) (*Controller, *Driver) {
	t.Helper()
	net, err := LinearTopology(nSwitches)
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnvironment("influxdb", "atomix")
	app := NewL2Switch(map[string]int{"influxdb": 1, "atomix": 1})
	c := NewController(net, env, app)
	return c, &Driver{C: c}
}

func TestLearningSwitchSingleSwitch(t *testing.T) {
	c, d := newRunningController(t, 1)
	net := c.Net
	// Two extra hosts on switch 1? Linear topology gives 1 host/switch;
	// use a custom network for the single-switch case.
	net = NewNetwork()
	net.AddSwitch(1, 4)
	for i := uint32(1); i <= 3; i++ {
		if err := net.AddHost(uint64(0x20+i), PortRef{1, i}); err != nil {
			t.Fatal(err)
		}
	}
	c.Net = net

	// Unknown destination floods to everyone.
	got, err := d.Broadcast(0x21)
	if err != nil {
		t.Fatal(err)
	}
	if !got[0x22] || !got[0x23] || len(got) != 2 {
		t.Errorf("broadcast deliveries: %v", got)
	}
	// After learning, unicast reaches exactly the destination.
	ok, err := d.Ping(0x22, 0x21)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("ping 0x22 -> 0x21 failed")
	}
	// The flow is now installed: dataplane handles it without punts.
	sw, _ := net.Switch(1)
	if sw.Table.Len() == 0 {
		t.Error("no flows installed")
	}
	net.DrainPacketIns()
	if _, err := net.InjectFromHost(0x22, Packet{EthDst: 0x21}); err != nil {
		t.Fatal(err)
	}
	if len(net.PacketIns) != 0 {
		t.Error("installed flow should forward without punting")
	}
}

func TestLearningSwitchAcrossLine(t *testing.T) {
	c, d := newRunningController(t, 3)
	rep, err := d.FullConnectivity()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reachable != rep.Pairs {
		t.Errorf("connectivity %d/%d", rep.Reachable, rep.Pairs)
	}
	if !rep.BroadcastOK {
		t.Error("broadcast incomplete")
	}
	if c.State != StateRunning {
		t.Errorf("controller state %v", c.State)
	}
}

func TestPortDownForgetsHosts(t *testing.T) {
	c, d := newRunningController(t, 2)
	if ok, _ := d.Ping(0x11, 0x12); !ok {
		// learn both ways first
		t.Fatal("initial ping failed")
	}
	if ok, _ := d.Ping(0x12, 0x11); !ok {
		t.Fatal("reverse ping failed")
	}
	// Take down host 0x12's port (switch 2, port 1).
	err := c.Submit(Event{Kind: EventNetwork, Msg: &openflow.PortStatus{
		DatapathID: 2, Port: 1, Reason: 2, Up: false,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := d.Ping(0x11, 0x12); ok {
		t.Error("ping should fail with destination port down")
	}
	// Bring it back: reactive re-learning restores connectivity.
	err = c.Submit(Event{Kind: EventNetwork, Msg: &openflow.PortStatus{
		DatapathID: 2, Port: 1, Reason: 2, Up: true,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := d.Ping(0x12, 0x11); !ok {
		t.Error("recovery ping failed")
	}
}

func TestConfigValidation(t *testing.T) {
	c, _ := newRunningController(t, 1)
	if err := c.Submit(Event{Kind: EventConfig, Key: "vlan.office", Value: "100"}); err != nil {
		t.Fatal(err)
	}
	if c.Config["vlan.office"] != "100" {
		t.Error("config not applied")
	}
	// Invalid VLAN logs an error but does not crash.
	if err := c.Submit(Event{Kind: EventConfig, Key: "vlan.bad", Value: "9999"}); err != nil {
		t.Fatal(err)
	}
	if c.Stats.ErrorsLogged == 0 {
		t.Error("invalid config should log an error")
	}
	if _, ok := c.Config["vlan.bad"]; ok {
		t.Error("invalid config must not be applied")
	}
	if c.State != StateRunning {
		t.Error("controller should keep running")
	}
}

func TestExternalCallVersionCheck(t *testing.T) {
	c, _ := newRunningController(t, 1)
	if err := c.Submit(Event{Kind: EventExternalCall, Service: "influxdb"}); err != nil {
		t.Fatal(err)
	}
	if c.Stats.ErrorsLogged != 0 {
		t.Error("matching version should not error")
	}
	// Upgrade the live service under the controller: API mismatch.
	c.Env.Versions["influxdb"] = 2
	if err := c.Submit(Event{Kind: EventExternalCall, Service: "influxdb"}); err != nil {
		t.Fatal(err)
	}
	if c.Stats.ErrorsLogged != 1 {
		t.Errorf("version mismatch should log an error, got %d", c.Stats.ErrorsLogged)
	}
	// Unknown service.
	if err := c.Submit(Event{Kind: EventExternalCall, Service: "nosuch"}); err != nil {
		t.Fatal(err)
	}
	if c.Stats.ErrorsLogged != 2 {
		t.Error("unknown service should log an error")
	}
}

func TestHardwareReboot(t *testing.T) {
	c, d := newRunningController(t, 2)
	// Ping both ways so unicast flows install (reactive learning needs
	// the destination MAC seen as a source first).
	if ok, _ := d.Ping(0x11, 0x12); !ok {
		t.Fatal("setup ping failed")
	}
	if ok, _ := d.Ping(0x12, 0x11); !ok {
		t.Fatal("reverse setup ping failed")
	}
	sw, _ := c.Net.Switch(1)
	if sw.Table.Len() == 0 {
		t.Fatal("expected flows before reboot")
	}
	if err := c.Submit(Event{Kind: EventHardwareReboot, DPID: 1}); err != nil {
		t.Fatal(err)
	}
	if sw.Table.Len() != 0 {
		t.Error("reboot should clear the flow table")
	}
	// Reactive forwarding re-converges.
	if ok, _ := d.Ping(0x11, 0x12); !ok {
		t.Error("ping after reboot failed")
	}
}

func TestControllerCrashSemantics(t *testing.T) {
	crashApp := appFunc(func(c *Controller, ev Event) (int, error) {
		return 1, ErrCrash
	})
	net, _ := LinearTopology(1)
	c := NewController(net, NewEnvironment(), crashApp)
	err := c.Submit(Event{Kind: EventConfig, Key: "x", Value: "y"})
	if err == nil || !errors.Is(err, ErrCrash) {
		t.Fatalf("want ErrCrash, got %v", err)
	}
	if c.State != StateCrashed {
		t.Errorf("state = %v, want crashed", c.State)
	}
	if err := c.Submit(Event{Kind: EventConfig}); !errors.Is(err, ErrNotRunning) {
		t.Errorf("dead controller should reject events: %v", err)
	}
	if c.Stats.EventsDropped != 1 {
		t.Errorf("dropped = %d", c.Stats.EventsDropped)
	}
}

// appFunc adapts a function to the App interface for tests.
type appFunc func(*Controller, Event) (int, error)

func (appFunc) Name() string                                       { return "test-app" }
func (f appFunc) HandleEvent(c *Controller, ev Event) (int, error) { return f(c, ev) }

func TestStallDetection(t *testing.T) {
	slow := appFunc(func(c *Controller, ev Event) (int, error) {
		return 5000, nil // huge logical cost => stall
	})
	net, _ := LinearTopology(1)
	c := NewController(net, NewEnvironment(), slow)
	if err := c.Submit(Event{Kind: EventConfig}); err != nil {
		t.Fatal(err)
	}
	if c.State != StateStalled {
		t.Errorf("state = %v, want stalled", c.State)
	}
}

func TestMiddlewareOrderAndRestart(t *testing.T) {
	var order []string
	mw := func(tag string) Middleware {
		return func(next HandlerFunc) HandlerFunc {
			return func(c *Controller, ev Event) (int, error) {
				order = append(order, tag)
				return next(c, ev)
			}
		}
	}
	net, _ := LinearTopology(1)
	app := NewL2Switch(nil)
	c := NewController(net, NewEnvironment(), app, mw("outer"), mw("inner"))
	if err := c.Submit(Event{Kind: EventConfig, Key: "a", Value: "b"}); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "outer" || order[1] != "inner" {
		t.Errorf("middleware order = %v", order)
	}
	if len(c.Log) != 1 {
		t.Errorf("log length = %d", len(c.Log))
	}
	c.State = StateCrashed
	c.Restart(true)
	if c.State != StateRunning || len(c.Log) != 1 {
		t.Error("restart with keepLog should preserve log and run")
	}
	c.Restart(false)
	if len(c.Log) != 0 {
		t.Error("restart without keepLog should clear log")
	}
}

func TestLinearTopologyErrors(t *testing.T) {
	if _, err := LinearTopology(0); err == nil {
		t.Error("want error for 0 switches")
	}
	net := NewNetwork()
	if _, err := net.Switch(9); !errors.Is(err, ErrNoSwitch) {
		t.Errorf("want ErrNoSwitch, got %v", err)
	}
	if err := net.AddHost(1, PortRef{9, 1}); !errors.Is(err, ErrNoSwitch) {
		t.Errorf("want ErrNoSwitch, got %v", err)
	}
	if _, err := net.InjectFromHost(42, Packet{}); !errors.Is(err, ErrNoHost) {
		t.Errorf("want ErrNoHost, got %v", err)
	}
	net.AddSwitch(1, 2)
	if err := net.AddLink(PortRef{1, 1}, PortRef{2, 1}); !errors.Is(err, ErrBadLink) {
		t.Errorf("want ErrBadLink, got %v", err)
	}
	if err := net.AddLink(PortRef{1, 5}, PortRef{1, 1}); !errors.Is(err, ErrBadLink) {
		t.Errorf("want ErrBadLink for bad port, got %v", err)
	}
}

func TestLoopSafety(t *testing.T) {
	// Two switches connected by two parallel links and a flood rule:
	// the hop bound must terminate the walk.
	net := NewNetwork()
	net.AddSwitch(1, 4)
	net.AddSwitch(2, 4)
	if err := net.AddLink(PortRef{1, 2}, PortRef{2, 2}); err != nil {
		t.Fatal(err)
	}
	if err := net.AddLink(PortRef{1, 3}, PortRef{2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := net.AddHost(0x31, PortRef{1, 1}); err != nil {
		t.Fatal(err)
	}
	for _, dpid := range []uint64{1, 2} {
		sw, _ := net.Switch(dpid)
		sw.Table.Add(FlowEntry{Priority: 1, Match: openflow.Match{},
			Actions: []openflow.Action{{Type: openflow.ActionOutput, Port: openflow.PortFlood}}})
	}
	// Must return (bounded), not hang.
	if _, err := net.InjectFromHost(0x31, Packet{EthDst: 0x99}); err != nil {
		t.Fatal(err)
	}
}

func TestSetVlanAction(t *testing.T) {
	net := NewNetwork()
	net.AddSwitch(1, 2)
	if err := net.AddHost(0x41, PortRef{1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := net.AddHost(0x42, PortRef{1, 2}); err != nil {
		t.Fatal(err)
	}
	sw, _ := net.Switch(1)
	sw.Table.Add(FlowEntry{
		Priority: 5,
		Match:    openflow.Match{EthDst: 0x42},
		Actions: []openflow.Action{
			{Type: openflow.ActionSetVlan, Vlan: 77},
			{Type: openflow.ActionOutput, Port: 2},
		},
	})
	deliveries, err := net.InjectFromHost(0x41, Packet{EthDst: 0x42, VlanID: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(deliveries) != 1 {
		t.Fatalf("deliveries = %d", len(deliveries))
	}
	if deliveries[0].Packet.VlanID != 77 {
		t.Errorf("vlan = %d, want 77 (SetVlan should rewrite)", deliveries[0].Packet.VlanID)
	}
}

func TestDropAction(t *testing.T) {
	net := NewNetwork()
	net.AddSwitch(1, 2)
	if err := net.AddHost(0x41, PortRef{1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := net.AddHost(0x42, PortRef{1, 2}); err != nil {
		t.Fatal(err)
	}
	sw, _ := net.Switch(1)
	sw.Table.Add(FlowEntry{
		Priority: 9,
		Match:    openflow.Match{EthDst: 0x42},
		Actions:  []openflow.Action{{Type: openflow.ActionDrop}},
	})
	deliveries, err := net.InjectFromHost(0x41, Packet{EthDst: 0x42})
	if err != nil {
		t.Fatal(err)
	}
	if len(deliveries) != 0 {
		t.Errorf("drop rule leaked %d deliveries", len(deliveries))
	}
	if len(net.PacketIns) != 0 {
		t.Error("dropped packet must not punt")
	}
}

func TestNoReflectionOutIngressPort(t *testing.T) {
	// A flow whose output port equals the ingress port must not send
	// the packet back where it came from (OpenFlow's OFPP_IN_PORT rule).
	net := NewNetwork()
	net.AddSwitch(1, 2)
	net.AddSwitch(2, 2)
	if err := net.AddLink(PortRef{1, 2}, PortRef{2, 1}); err != nil {
		t.Fatal(err)
	}
	if err := net.AddHost(0x51, PortRef{1, 1}); err != nil {
		t.Fatal(err)
	}
	sw2, _ := net.Switch(2)
	// Pathological rule: send everything back out port 1 (its ingress).
	sw2.Table.Add(FlowEntry{Priority: 1, Match: openflow.Match{},
		Actions: []openflow.Action{{Type: openflow.ActionOutput, Port: 1}}})
	sw1, _ := net.Switch(1)
	sw1.Table.Add(FlowEntry{Priority: 1, Match: openflow.Match{},
		Actions: []openflow.Action{{Type: openflow.ActionOutput, Port: 2}}})
	if _, err := net.InjectFromHost(0x51, Packet{EthDst: 0x99}); err != nil {
		t.Fatal(err)
	}
	// The packet dies at switch 2 rather than ping-ponging; nothing
	// returns to switch 1 and no host sees it.
	if len(net.Deliveries) != 0 {
		t.Errorf("unexpected deliveries: %+v", net.Deliveries)
	}
}
