// Package vcs models a git-like commit history and generates the
// synthetic FAUCET history the burn analysis of §VI-B runs over: the
// subsystem split of Figure 11 (configuration 38 %, network
// functionality 35 %, external abstraction 27 %) and the dependency
// version-change counts of Table IV are calibration targets realized
// as actual commits touching actual paths.
package vcs

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// DepBump records a dependency version change carried by a commit.
type DepBump struct {
	Dep  string `json:"dep"`
	From string `json:"from"`
	To   string `json:"to"`
}

// Commit is one history entry.
type Commit struct {
	Hash    string    `json:"hash"`
	Time    time.Time `json:"time"`
	Author  string    `json:"author"`
	Message string    `json:"message"`
	Files   []string  `json:"files"`
	// Bump is non-nil for dependency-update commits.
	Bump *DepBump `json:"bump,omitempty"`
}

// History is an ordered commit log (oldest first).
type History struct {
	Repo    string
	Commits []Commit
}

// ErrEmptyHistory is returned by analyses over empty histories.
var ErrEmptyHistory = errors.New("vcs: empty history")

// Span returns the first and last commit times.
func (h *History) Span() (first, last time.Time, err error) {
	if len(h.Commits) == 0 {
		return time.Time{}, time.Time{}, ErrEmptyHistory
	}
	return h.Commits[0].Time, h.Commits[len(h.Commits)-1].Time, nil
}

// FaucetDependency describes one external dependency of the FAUCET
// controller and how many version changes it saw (Table IV).
type FaucetDependency struct {
	Name        string
	Changes     int
	Description string
}

// FaucetDependencies returns Table IV's burn-down targets.
func FaucetDependencies() []FaucetDependency {
	return []FaucetDependency{
		{Name: "ryu", Changes: 28, Description: "component-based SDN framework"},
		{Name: "chewie", Changes: 19, Description: "802.1X standard implementation"},
		{Name: "prometheus_client", Changes: 8, Description: "monitoring system"},
		{Name: "pyyaml", Changes: 6, Description: "YAML parser"},
		{Name: "eventlet", Changes: 5, Description: "networking library"},
		{Name: "beka", Changes: 5, Description: "BGP speaker"},
		{Name: "msgpack", Changes: 2, Description: "binary serialization"},
		{Name: "influxdb", Changes: 1, Description: "time series database"},
		{Name: "networkx", Changes: 1, Description: "network analysis"},
		{Name: "pbr", Changes: 1, Description: "setuptools packaging"},
		{Name: "pytricia", Changes: 1, Description: "IP address lookup"},
	}
}

// File pools per subsystem (Figure 11's A/B/C split).
var (
	configFiles = []string{
		"faucet/config_parser.py", "faucet/conf.py", "faucet/config_parser_util.py",
		"faucet/acl.py", "faucet/vlan_conf.py", "etc/faucet/faucet.yaml",
	}
	networkFiles = []string{
		"faucet/valve.py", "faucet/valve_switch.py", "faucet/valve_route.py",
		"faucet/vlan.py", "faucet/valve_flood.py", "faucet/faucet_dot1x.py",
		"faucet/valve_table.py", "faucet/router.py",
	}
	externalFiles = []string{
		"faucet/gauge.py", "faucet/gauge_influx.py", "faucet/prom_client.py",
		"requirements.txt", "faucet/valve_ryuapp.py", "setup.py",
	}
)

// GenerateConfig controls synthetic history generation.
type GenerateConfig struct {
	// TotalCommits across the history (default 3000).
	TotalCommits int
	// Start is the history's first commit time (default 2016-01-01).
	Start time.Time
	// Days is the history span (default 1500).
	Days int
	// Seed drives all randomness.
	Seed int64
}

func (c GenerateConfig) withDefaults() GenerateConfig {
	if c.TotalCommits <= 0 {
		c.TotalCommits = 3000
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	if c.Days <= 0 {
		c.Days = 1500
	}
	return c
}

// GenerateFaucet synthesizes the FAUCET history: commits split across
// the three subsystems per Figure 11, with Table IV's dependency bumps
// embedded as requirements.txt commits (they count toward the external
// abstraction share).
func GenerateFaucet(cfg GenerateConfig) (*History, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	deps := FaucetDependencies()
	var bumps []Commit
	for _, d := range deps {
		ver := 1
		for i := 0; i < d.Changes; i++ {
			from := fmt.Sprintf("%d.%d.0", 1+ver/10, ver%10)
			ver++
			to := fmt.Sprintf("%d.%d.0", 1+ver/10, ver%10)
			bumps = append(bumps, Commit{
				Author:  pick(rng, authors),
				Message: fmt.Sprintf("build: bump %s from %s to %s", d.Name, from, to),
				Files:   []string{"requirements.txt"},
				Bump:    &DepBump{Dep: d.Name, From: from, To: to},
			})
		}
	}
	if len(bumps) > cfg.TotalCommits/4 {
		return nil, fmt.Errorf("vcs: %d bump commits exceed budget for %d total", len(bumps), cfg.TotalCommits)
	}

	// Remaining commits by subsystem quota: config 38 %, network 35 %,
	// external 27 % (bumps already count as external).
	nConfig := int(0.38 * float64(cfg.TotalCommits))
	nNetwork := int(0.35 * float64(cfg.TotalCommits))
	nExternal := cfg.TotalCommits - nConfig - nNetwork - len(bumps)
	if nExternal < 0 {
		return nil, errors.New("vcs: commit budget too small for external share")
	}

	var commits []Commit
	add := func(n int, files []string, verb string) {
		for i := 0; i < n; i++ {
			nf := 1 + rng.Intn(3)
			cf := make([]string, 0, nf)
			for j := 0; j < nf; j++ {
				cf = append(cf, pick(rng, files))
			}
			commits = append(commits, Commit{
				Author:  pick(rng, authors),
				Message: fmt.Sprintf("%s %s", verb, cf[0]),
				Files:   cf,
			})
		}
	}
	add(nConfig, configFiles, "config: fix parsing in")
	add(nNetwork, networkFiles, "valve: improve forwarding in")
	add(nExternal, externalFiles, "gauge: adapt external interface in")
	commits = append(commits, bumps...)

	// Shuffle then timestamp monotonically across the span.
	rng.Shuffle(len(commits), func(i, j int) { commits[i], commits[j] = commits[j], commits[i] })
	span := time.Duration(cfg.Days) * 24 * time.Hour
	for i := range commits {
		frac := float64(i) / float64(len(commits))
		jitter := time.Duration(rng.Int63n(int64(6 * time.Hour)))
		commits[i].Time = cfg.Start.Add(time.Duration(frac*float64(span)) + jitter)
		commits[i].Hash = fmt.Sprintf("%08x%08x", rng.Uint32(), rng.Uint32())
	}
	sort.Slice(commits, func(i, j int) bool { return commits[i].Time.Before(commits[j].Time) })
	return &History{Repo: "faucet", Commits: commits}, nil
}

// GenerateONOS synthesizes an ONOS history whose per-release commit
// counts follow the given (version, commits) schedule — Figure 10's
// declining series. Releases are quarterly from start.
func GenerateONOS(commitsPerRelease []int, start time.Time, seed int64) (*History, []time.Time, error) {
	if len(commitsPerRelease) == 0 {
		return nil, nil, errors.New("vcs: no releases")
	}
	if start.IsZero() {
		start = time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	rng := rand.New(rand.NewSource(seed))
	var commits []Commit
	releases := make([]time.Time, len(commitsPerRelease))
	for r, n := range commitsPerRelease {
		relStart := start.AddDate(0, 3*r, 0)
		releases[r] = relStart.AddDate(0, 3, 0) // release ships at quarter end
		for i := 0; i < n; i++ {
			offset := time.Duration(rng.Int63n(int64(90 * 24 * time.Hour)))
			commits = append(commits, Commit{
				Hash:    fmt.Sprintf("%08x%08x", rng.Uint32(), rng.Uint32()),
				Time:    relStart.Add(offset),
				Author:  pick(rng, authors),
				Message: "onos: change " + pick(rng, []string{"intent", "flow", "store", "cli", "gui"}),
				Files:   []string{"core/net/src/main/java/Something.java"},
			})
		}
	}
	sort.Slice(commits, func(i, j int) bool { return commits[i].Time.Before(commits[j].Time) })
	return &History{Repo: "onos", Commits: commits}, releases, nil
}

var authors = []string{"alice", "bob", "carol", "dave", "erin", "frank"}

func pick(rng *rand.Rand, ss []string) string { return ss[rng.Intn(len(ss))] }
