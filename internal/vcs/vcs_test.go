package vcs

import (
	"testing"
	"time"
)

func TestGenerateFaucetBasics(t *testing.T) {
	h, err := GenerateFaucet(GenerateConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Commits) != 3000 {
		t.Errorf("commits = %d, want 3000", len(h.Commits))
	}
	first, last, err := h.Span()
	if err != nil {
		t.Fatal(err)
	}
	if !last.After(first) {
		t.Error("history should span time")
	}
	// Monotone timestamps.
	for i := 1; i < len(h.Commits); i++ {
		if h.Commits[i].Time.Before(h.Commits[i-1].Time) {
			t.Fatal("commits not time-ordered")
		}
	}
	// Hash, author, files populated.
	for _, c := range h.Commits[:50] {
		if c.Hash == "" || c.Author == "" || len(c.Files) == 0 {
			t.Fatalf("incomplete commit: %+v", c)
		}
	}
}

func TestGenerateFaucetBumpCounts(t *testing.T) {
	h, err := GenerateFaucet(GenerateConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, c := range h.Commits {
		if c.Bump != nil {
			counts[c.Bump.Dep]++
			if len(c.Files) != 1 || c.Files[0] != "requirements.txt" {
				t.Errorf("bump commit should touch requirements.txt: %v", c.Files)
			}
		}
	}
	for _, d := range FaucetDependencies() {
		if counts[d.Name] != d.Changes {
			t.Errorf("%s bumps = %d, want %d (Table IV)", d.Name, counts[d.Name], d.Changes)
		}
	}
}

func TestGenerateFaucetDeterministic(t *testing.T) {
	a, err := GenerateFaucet(GenerateConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateFaucet(GenerateConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Commits {
		if a.Commits[i].Hash != b.Commits[i].Hash || a.Commits[i].Message != b.Commits[i].Message {
			t.Fatal("same seed should give identical history")
		}
	}
}

func TestGenerateFaucetBudgetError(t *testing.T) {
	if _, err := GenerateFaucet(GenerateConfig{TotalCommits: 100, Seed: 1}); err == nil {
		t.Error("want error when bumps exceed commit budget")
	}
}

func TestGenerateONOS(t *testing.T) {
	counts := []int{400, 300, 200}
	h, releases, err := GenerateONOS(counts, time.Time{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(releases) != 3 {
		t.Fatalf("releases = %d", len(releases))
	}
	if len(h.Commits) != 900 {
		t.Errorf("commits = %d, want 900", len(h.Commits))
	}
	for i := 1; i < len(h.Commits); i++ {
		if h.Commits[i].Time.Before(h.Commits[i-1].Time) {
			t.Fatal("ONOS commits not time-ordered")
		}
	}
	if _, _, err := GenerateONOS(nil, time.Time{}, 1); err == nil {
		t.Error("want error for empty schedule")
	}
}

func TestSpanEmpty(t *testing.T) {
	var h History
	if _, _, err := h.Span(); err != ErrEmptyHistory {
		t.Errorf("want ErrEmptyHistory, got %v", err)
	}
}
