package resilience

import (
	"errors"
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

// The three breaker states.
const (
	// StateClosed passes every request, counting consecutive failures.
	StateClosed BreakerState = iota
	// StateOpen rejects requests until OpenTimeout elapses.
	StateOpen
	// StateHalfOpen admits a bounded number of probe requests to test
	// whether the dependency recovered.
	StateHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// ErrOpen is returned by Allow while the circuit is open (or while
// half-open with every probe slot taken).
var ErrOpen = errors.New("resilience: circuit open")

// RetryAfterHint makes a rejected call wait roughly one open period
// before its next attempt instead of burning retries against a circuit
// that cannot admit them yet.
type openError struct{ wait time.Duration }

func (e *openError) Error() string                 { return ErrOpen.Error() }
func (e *openError) Unwrap() error                 { return ErrOpen }
func (e *openError) RetryAfterHint() time.Duration { return e.wait }

// BreakerConfig tunes a Breaker. Zero fields take the defaults.
type BreakerConfig struct {
	// FailureThreshold is the consecutive-failure count that trips the
	// circuit (default 5).
	FailureThreshold int
	// SuccessThreshold is the consecutive half-open successes needed
	// to close again (default 2).
	SuccessThreshold int
	// OpenTimeout is how long the circuit stays open before admitting
	// probes (default 10s).
	OpenTimeout time.Duration
	// HalfOpenProbes bounds concurrent half-open probes (default 1).
	HalfOpenProbes int
	// Now is the clock, injectable for tests.
	Now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.SuccessThreshold <= 0 {
		c.SuccessThreshold = 2
	}
	if c.OpenTimeout <= 0 {
		c.OpenTimeout = 10 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is a circuit breaker. Callers pair Allow with Record:
//
//	if err := b.Allow(); err != nil { return err }
//	err := doRequest()
//	b.Record(err == nil)
//
// Safe for concurrent use.
type Breaker struct {
	mu  sync.Mutex
	cfg BreakerConfig

	state     BreakerState
	failures  int // consecutive failures while closed
	successes int // consecutive successes while half-open
	probes    int // in-flight half-open probes
	openedAt  time.Time

	opens      uint64
	rejections uint64
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// State reports the current state, applying the open→half-open
// transition if the open period has elapsed.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpen()
	return b.state
}

// maybeHalfOpen transitions open→half-open once OpenTimeout elapses.
// Callers must hold b.mu.
func (b *Breaker) maybeHalfOpen() {
	if b.state == StateOpen && b.cfg.Now().Sub(b.openedAt) >= b.cfg.OpenTimeout {
		b.state = StateHalfOpen
		b.probes = 0
		b.successes = 0
	}
}

// Allow asks to send one request. A nil return admits the request and
// must be matched by exactly one Record call; ErrOpen (carrying a
// Retry-After hint of the remaining open period) rejects it.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpen()
	switch b.state {
	case StateClosed:
		return nil
	case StateHalfOpen:
		if b.probes < b.cfg.HalfOpenProbes {
			b.probes++
			return nil
		}
		b.rejections++
		return &openError{wait: b.cfg.OpenTimeout}
	default: // StateOpen
		b.rejections++
		wait := b.cfg.OpenTimeout - b.cfg.Now().Sub(b.openedAt)
		if wait < 0 {
			wait = 0
		}
		return &openError{wait: wait}
	}
}

// Record reports the outcome of a request previously admitted by
// Allow.
func (b *Breaker) Record(success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		if success {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.trip()
		}
	case StateHalfOpen:
		if b.probes > 0 {
			b.probes--
		}
		if !success {
			b.trip()
			return
		}
		b.successes++
		if b.successes >= b.cfg.SuccessThreshold {
			b.state = StateClosed
			b.failures = 0
		}
	default: // StateOpen: a straggler from before the trip; ignore.
	}
}

// trip opens the circuit. Callers must hold b.mu.
func (b *Breaker) trip() {
	b.state = StateOpen
	b.openedAt = b.cfg.Now()
	b.failures = 0
	b.opens++
}

// Counts reports how many times the circuit opened and how many
// requests it rejected.
func (b *Breaker) Counts() (opens, rejections uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens, b.rejections
}
