package resilience

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"
)

func TestBackoffSchedule(t *testing.T) {
	p := Policy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second}
	wants := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, time.Second, time.Second,
	}
	for retry, want := range wants {
		if got := p.Backoff(retry); got != want {
			t.Errorf("Backoff(%d) = %v, want %v", retry, got, want)
		}
	}
	// Deep retries must not overflow past the cap.
	if got := p.Backoff(80); got != time.Second {
		t.Errorf("Backoff(80) = %v, want cap %v", got, time.Second)
	}
}

func TestDelayFullJitterBounds(t *testing.T) {
	// With an injected uniform source the jittered delay must stay in
	// [0, ceiling) and actually use the coefficient.
	for _, coeff := range []float64{0, 0.25, 0.999} {
		p := Policy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second,
			Rand: func() float64 { return coeff }}
		got := p.Delay(2, 0) // ceiling 400ms
		want := time.Duration(coeff * float64(400*time.Millisecond))
		if got != want {
			t.Errorf("Delay(2) with rand=%v = %v, want %v", coeff, got, want)
		}
		if got < 0 || got >= 400*time.Millisecond && coeff < 1 {
			t.Errorf("Delay(2) = %v outside [0, 400ms)", got)
		}
	}
}

func TestDelayHonorsRetryAfterHint(t *testing.T) {
	p := Policy{BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond,
		MaxRetryAfter: 3 * time.Second}
	if got := p.Delay(0, 2*time.Second); got != 2*time.Second {
		t.Errorf("hinted delay = %v, want 2s", got)
	}
	// The hint is capped so a hostile header cannot stall the miner.
	if got := p.Delay(0, time.Hour); got != 3*time.Second {
		t.Errorf("capped hinted delay = %v, want 3s", got)
	}
}

func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2021, 6, 1, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		in   string
		want time.Duration
		ok   bool
	}{
		{"", 0, false},
		{"0", 0, true},
		{"7", 7 * time.Second, true},
		{"-3", 0, false},
		{"garbage", 0, false},
		{now.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second, true},
		{now.Add(-time.Minute).Format(http.TimeFormat), 0, true}, // past date clamps
	}
	for _, c := range cases {
		got, ok := ParseRetryAfter(c.in, now)
		if got != c.want || ok != c.ok {
			t.Errorf("ParseRetryAfter(%q) = %v,%v want %v,%v", c.in, got, ok, c.want, c.ok)
		}
	}
}

// fastPolicy keeps retry tests quick.
func fastPolicy() Policy {
	return Policy{MaxAttempts: 4, BaseDelay: time.Microsecond,
		MaxDelay: 10 * time.Microsecond}
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	calls := 0
	got, err := Do(context.Background(), fastPolicy(), func(context.Context) (string, error) {
		calls++
		if calls < 3 {
			return "", errors.New("transient")
		}
		return "ok", nil
	})
	if err != nil || got != "ok" {
		t.Fatalf("Do = %q, %v", got, err)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	calls := 0
	base := errors.New("still down")
	_, err := Do(context.Background(), fastPolicy(), func(context.Context) (int, error) {
		calls++
		return 0, base
	})
	if !errors.Is(err, ErrExhausted) || !errors.Is(err, base) {
		t.Fatalf("err = %v, want ErrExhausted wrapping the cause", err)
	}
	if calls != 4 {
		t.Errorf("calls = %d, want MaxAttempts=4", calls)
	}
}

func TestDoPermanentStopsImmediately(t *testing.T) {
	calls := 0
	_, err := Do(context.Background(), fastPolicy(), func(context.Context) (int, error) {
		calls++
		return 0, Permanent(errors.New("bad request"))
	})
	if err == nil || calls != 1 {
		t.Fatalf("calls = %d, err = %v; want 1 call and an error", calls, err)
	}
}

func TestDoRespectsContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	_, err := Do(ctx, fastPolicy(), func(context.Context) (int, error) {
		calls++
		cancel()
		return 0, errors.New("transient")
	})
	if err == nil || calls != 1 {
		t.Fatalf("calls = %d, err = %v; cancellation must stop the loop", calls, err)
	}
}

func TestDoPerAttemptTimeout(t *testing.T) {
	p := fastPolicy()
	p.MaxAttempts = 2
	p.PerAttemptTimeout = 5 * time.Millisecond
	calls := 0
	_, err := Do(context.Background(), p, func(ctx context.Context) (int, error) {
		calls++
		<-ctx.Done() // each attempt is individually bounded
		return 0, ctx.Err()
	})
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted (timeouts are retryable)", err)
	}
	if calls != 2 {
		t.Errorf("calls = %d, want 2", calls)
	}
}

func TestDoBudgetExhaustion(t *testing.T) {
	b := NewBudget(1, 0) // one retry total, no per-request earnings
	p := fastPolicy()
	p.Budget = b
	calls := 0
	_, err := Do(context.Background(), p, func(context.Context) (int, error) {
		calls++
		return 0, errors.New("transient")
	})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if calls != 2 { // initial + the single budgeted retry
		t.Errorf("calls = %d, want 2", calls)
	}
	requests, retries, denied := b.Stats()
	if requests != 1 || retries != 1 || denied != 1 {
		t.Errorf("budget stats = %d/%d/%d, want 1/1/1", requests, retries, denied)
	}
}

func TestBudgetEarnsWithTraffic(t *testing.T) {
	b := NewBudget(0, 0.5)
	for i := 0; i < 4; i++ {
		b.Deposit()
	}
	granted := 0
	for b.Withdraw() {
		granted++
	}
	if granted != 2 { // 0.5 × 4 requests
		t.Errorf("granted = %d, want 2", granted)
	}
}

func TestDoOnRetryObservesSchedule(t *testing.T) {
	var delays []time.Duration
	p := fastPolicy()
	p.OnRetry = func(attempt int, delay time.Duration, err error) {
		delays = append(delays, delay)
	}
	_, _ = Do(context.Background(), p, func(context.Context) (int, error) {
		return 0, errors.New("transient")
	})
	if len(delays) != 3 {
		t.Fatalf("observed %d retries, want 3", len(delays))
	}
	for i, d := range delays {
		if ceiling := p.Backoff(i); d < 0 || d > ceiling {
			t.Errorf("retry %d delay %v outside [0, %v]", i, d, ceiling)
		}
	}
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{errors.New("conn reset"), true},
		{context.Canceled, false},
		{Permanent(errors.New("bad")), false},
		{&StatusError{Code: 429}, true},
		{&StatusError{Code: 503}, true},
		{&StatusError{Code: 501}, false},
		{&StatusError{Code: 404}, false},
	}
	for _, c := range cases {
		if got := retryable(c.err); got != c.want {
			t.Errorf("retryable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestHintFromErrorChain(t *testing.T) {
	err := error(&StatusError{Code: 429, RetryAfter: 9 * time.Second})
	if got := hintFrom(err); got != 9*time.Second {
		t.Errorf("hintFrom = %v, want 9s", got)
	}
	if got := hintFrom(errors.New("plain")); got != 0 {
		t.Errorf("hintFrom(plain) = %v, want 0", got)
	}
}
