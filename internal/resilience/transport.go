package resilience

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"
)

// DefaultMaxBodyBytes caps buffered response bodies (the SNIPPETS
// unbounded-ReadAll lesson): a misbehaving tracker cannot balloon the
// miner's memory.
const DefaultMaxBodyBytes = 10 << 20

// ErrBodyTooLarge reports a response body over the transport's cap.
var ErrBodyTooLarge = errors.New("resilience: response body exceeds limit")

// Transport is an http.RoundTripper middleware that retries transient
// failures under a Policy, routes every attempt through an optional
// circuit Breaker, and fully buffers successful response bodies (up
// to MaxBodyBytes) so that mid-body failures — truncations, dropped
// connections — are retried here instead of surfacing as decode
// errors in every caller.
//
// Retries are attempted only for requests that can be safely
// re-issued: body-less requests or those with GetBody set. On a
// retryable status (429, most 5xx) the transport honors Retry-After;
// once attempts are exhausted the last response is returned as-is so
// callers see the status they would have seen without the middleware.
type Transport struct {
	// Base is the underlying RoundTripper (default
	// http.DefaultTransport).
	Base http.RoundTripper
	// Policy is the retry policy (zero value = package defaults).
	Policy Policy
	// Breaker, when set, gates every attempt.
	Breaker *Breaker
	// MaxBodyBytes caps buffered bodies (default DefaultMaxBodyBytes).
	MaxBodyBytes int64

	requests        atomic.Uint64
	attempts        atomic.Uint64
	retries         atomic.Uint64
	retryAfterSeen  atomic.Uint64
	bodyRetries     atomic.Uint64
	breakerRejected atomic.Uint64
}

var _ http.RoundTripper = (*Transport)(nil)

// NewTransport builds a Transport over base (nil = default transport)
// with the given policy and optional breaker.
func NewTransport(base http.RoundTripper, p Policy, b *Breaker) *Transport {
	return &Transport{Base: base, Policy: p, Breaker: b}
}

// TransportMetrics is a snapshot of a Transport's counters.
type TransportMetrics struct {
	// Requests counts RoundTrip calls; Attempts counts wire attempts
	// (Attempts - Requests = retries + breaker fast-fails).
	Requests, Attempts uint64
	// Retries counts re-issued attempts after a transient failure.
	Retries uint64
	// RetryAfterSeen counts responses carrying a parseable
	// Retry-After header.
	RetryAfterSeen uint64
	// BodyRetries counts retries caused by mid-body read failures
	// (truncations, dropped connections after the header).
	BodyRetries uint64
	// BreakerRejected counts attempts the circuit breaker refused.
	BreakerRejected uint64
}

// Metrics snapshots the transport's counters.
func (t *Transport) Metrics() TransportMetrics {
	return TransportMetrics{
		Requests:        t.requests.Load(),
		Attempts:        t.attempts.Load(),
		Retries:         t.retries.Load(),
		RetryAfterSeen:  t.retryAfterSeen.Load(),
		BodyRetries:     t.bodyRetries.Load(),
		BreakerRejected: t.breakerRejected.Load(),
	}
}

func (t *Transport) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}

func (t *Transport) maxBody() int64 {
	if t.MaxBodyBytes > 0 {
		return t.MaxBodyBytes
	}
	return DefaultMaxBodyBytes
}

// record feeds the breaker, if any.
func (t *Transport) record(success bool) {
	if t.Breaker != nil {
		t.Breaker.Record(success)
	}
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.requests.Add(1)
	p := t.Policy.withDefaults()
	if p.Budget != nil {
		p.Budget.Deposit()
	}
	ctx := req.Context()
	rewindable := req.Body == nil || req.GetBody != nil

	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if p.Budget != nil && !p.Budget.Withdraw() {
				return nil, fmt.Errorf("%w after %d attempts: %w", ErrBudget, attempt, lastErr)
			}
			delay := p.Delay(attempt-1, hintFrom(lastErr))
			if p.OnRetry != nil {
				p.OnRetry(attempt, delay, lastErr)
			}
			if err := Sleep(ctx, delay); err != nil {
				return nil, err
			}
			t.retries.Add(1)
		}
		t.attempts.Add(1)
		last := attempt+1 >= p.MaxAttempts

		if t.Breaker != nil {
			if err := t.Breaker.Allow(); err != nil {
				t.breakerRejected.Add(1)
				lastErr = err
				if last {
					return nil, fmt.Errorf("%w (%d attempts): %w", ErrExhausted, p.MaxAttempts, err)
				}
				continue
			}
		}

		attemptCtx, cancel := ctx, func() {}
		if p.PerAttemptTimeout > 0 {
			var c context.CancelFunc
			attemptCtx, c = context.WithTimeout(ctx, p.PerAttemptTimeout)
			cancel = func() { c() }
		}
		attemptReq := req.Clone(attemptCtx)
		if attempt > 0 && req.GetBody != nil {
			body, err := req.GetBody()
			if err != nil {
				cancel()
				return nil, fmt.Errorf("resilience: rewind request body: %w", err)
			}
			attemptReq.Body = body
		}

		resp, err := t.base().RoundTrip(attemptReq)
		if err != nil {
			cancel()
			t.record(false)
			lastErr = err
			if ctx.Err() != nil || !rewindable || last {
				return nil, err
			}
			continue
		}

		if RetryableStatus(resp.StatusCode) {
			hint, seen := ParseRetryAfter(resp.Header.Get("Retry-After"), time.Now())
			if seen {
				t.retryAfterSeen.Add(1)
			}
			t.record(false)
			if !rewindable || last {
				// Hand the final response back untouched so callers
				// observe the status themselves.
				resp.Body = &cancelBody{rc: resp.Body, cancel: cancel}
				return resp, nil
			}
			drain(resp.Body)
			_ = resp.Body.Close()
			cancel()
			lastErr = &StatusError{
				Code: resp.StatusCode, Status: resp.Status,
				URL: req.URL.String(), RetryAfter: hint,
			}
			continue
		}

		// Success status: buffer the body so truncation is retryable.
		body, err := readCapped(resp.Body, t.maxBody())
		_ = resp.Body.Close()
		cancel()
		if err != nil {
			t.record(false)
			if errors.Is(err, ErrBodyTooLarge) {
				return nil, fmt.Errorf("resilience: %s: %w", req.URL, err)
			}
			t.bodyRetries.Add(1)
			lastErr = fmt.Errorf("resilience: read %s body: %w", req.URL, err)
			if ctx.Err() != nil || !rewindable || last {
				return nil, lastErr
			}
			continue
		}
		t.record(true)
		resp.Body = io.NopCloser(bytes.NewReader(body))
		resp.ContentLength = int64(len(body))
		return resp, nil
	}
}

// readCapped reads r fully, failing with ErrBodyTooLarge past limit.
func readCapped(r io.Reader, limit int64) ([]byte, error) {
	data, err := io.ReadAll(io.LimitReader(r, limit+1))
	if err != nil {
		return nil, err
	}
	if int64(len(data)) > limit {
		return nil, ErrBodyTooLarge
	}
	return data, nil
}

// drain consumes a bounded prefix of a body being discarded so the
// keep-alive connection can be reused.
func drain(r io.Reader) {
	_, _ = io.Copy(io.Discard, io.LimitReader(r, 4096))
}

// cancelBody ties a per-attempt context to the lifetime of a response
// body that is handed back to the caller.
type cancelBody struct {
	rc     io.ReadCloser
	cancel func()
}

func (b *cancelBody) Read(p []byte) (int, error) { return b.rc.Read(p) }

func (b *cancelBody) Close() error {
	err := b.rc.Close()
	b.cancel()
	return err
}
