// Package resilience hardens the study's HTTP mining layer against
// the very fault class the paper catalogs: transient network and
// service failures. The §II-B pipeline mines ~800 bugs over JIRA- and
// GitHub-like REST APIs, and a single dropped connection or 429 must
// not abort the run.
//
// The package has three layers:
//
//   - Policy + Do: a context-aware retry loop with exponential backoff,
//     full jitter, a per-attempt timeout, an optional shared retry
//     Budget, and Retry-After honoring for any error that carries a
//     server hint.
//   - Breaker: a circuit breaker (closed → open → half-open) that stops
//     hammering a tracker that is persistently down.
//   - Transport: an http.RoundTripper middleware combining both, so any
//     client gains retries, backoff and breaking without changing its
//     own code. See transport.go.
//
// All timing knobs accept test-friendly values and the jitter source is
// injectable, so retry schedules are reproducible under test.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Defaults applied by Policy.withDefaults.
const (
	DefaultMaxAttempts   = 4
	DefaultBaseDelay     = 100 * time.Millisecond
	DefaultMaxDelay      = 5 * time.Second
	DefaultMaxRetryAfter = 30 * time.Second
)

// Policy configures the retry loop. The zero value retries with the
// package defaults; fields override individually.
type Policy struct {
	// MaxAttempts is the total number of tries including the first
	// (default 4). 1 disables retries.
	MaxAttempts int
	// BaseDelay is the backoff ceiling before the first retry; it
	// doubles per retry (default 100ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff ceiling (default 5s).
	MaxDelay time.Duration
	// PerAttemptTimeout bounds each individual attempt; 0 leaves the
	// caller's context deadline in charge.
	PerAttemptTimeout time.Duration
	// MaxRetryAfter caps how long a server-provided Retry-After hint
	// is honored (default 30s), so a hostile header cannot stall the
	// miner indefinitely.
	MaxRetryAfter time.Duration
	// Budget, when set, is consulted before every retry; exhausting it
	// fails the call with ErrBudget. Budgets may be shared across many
	// calls to bound a whole mining run's retry volume.
	Budget *Budget
	// Rand supplies the jitter coefficient in [0,1). nil uses a
	// process-wide seeded source; tests inject a deterministic one.
	Rand func() float64
	// OnRetry, when set, observes every scheduled retry.
	OnRetry func(attempt int, delay time.Duration, err error)
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultMaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = DefaultBaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = DefaultMaxDelay
	}
	if p.MaxRetryAfter <= 0 {
		p.MaxRetryAfter = DefaultMaxRetryAfter
	}
	if p.Rand == nil {
		p.Rand = globalFloat64
	}
	return p
}

// globalFloat64 is the default jitter source, locked because Policy
// values may be shared across goroutines.
var (
	globalMu  sync.Mutex
	globalRng = rand.New(rand.NewSource(time.Now().UnixNano()))
)

func globalFloat64() float64 {
	globalMu.Lock()
	defer globalMu.Unlock()
	return globalRng.Float64()
}

// Backoff returns the pre-jitter delay ceiling for the given retry
// (0-based): min(MaxDelay, BaseDelay·2^retry).
func (p Policy) Backoff(retry int) time.Duration {
	p = p.withDefaults()
	d := p.BaseDelay
	for i := 0; i < retry; i++ {
		d *= 2
		if d >= p.MaxDelay || d <= 0 { // <= 0 guards overflow
			return p.MaxDelay
		}
	}
	if d > p.MaxDelay {
		return p.MaxDelay
	}
	return d
}

// Delay computes the wait before the given retry (0-based): the
// server's Retry-After hint when one is present (capped at
// MaxRetryAfter), otherwise full jitter over the backoff ceiling —
// rand·ceiling, the AWS "full jitter" scheme that decorrelates
// stampeding clients.
func (p Policy) Delay(retry int, hint time.Duration) time.Duration {
	p = p.withDefaults()
	if hint > 0 {
		if hint > p.MaxRetryAfter {
			return p.MaxRetryAfter
		}
		return hint
	}
	return time.Duration(p.Rand() * float64(p.Backoff(retry)))
}

// Retry loop failures.
var (
	// ErrExhausted wraps the last error once every attempt is spent.
	ErrExhausted = errors.New("resilience: attempts exhausted")
	// ErrBudget reports that the shared retry budget ran dry.
	ErrBudget = errors.New("resilience: retry budget exhausted")
)

// permanentError marks an error as non-retryable.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps an error so Do fails immediately instead of
// retrying — for inputs that cannot get better (bad request, parse
// failure of our own making).
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// StatusError reports a retryable-class HTTP response (429 or 5xx),
// carrying any Retry-After hint the server sent.
type StatusError struct {
	Code       int
	Status     string
	URL        string
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("resilience: %s returned %s", e.URL, e.Status)
}

// Temporary reports whether the status is worth retrying.
func (e *StatusError) Temporary() bool { return RetryableStatus(e.Code) }

// RetryAfterHint exposes the server's wait hint to the retry loop.
func (e *StatusError) RetryAfterHint() time.Duration { return e.RetryAfter }

// RetryableStatus reports whether an HTTP status code signals a
// transient condition: 429 and the 5xx family except 501.
func RetryableStatus(code int) bool {
	if code == http.StatusTooManyRequests {
		return true
	}
	return code >= 500 && code <= 599 && code != http.StatusNotImplemented
}

// retryable classifies an error for the retry loop: context
// cancellation and Permanent-wrapped errors stop immediately;
// StatusError follows its Temporary method; everything else —
// connection resets, timeouts, truncated bodies — is presumed
// transient.
func retryable(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) {
		return false
	}
	var perm *permanentError
	if errors.As(err, &perm) {
		return false
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.Temporary()
	}
	return true
}

// hinter is any error carrying a server-provided wait hint.
type hinter interface{ RetryAfterHint() time.Duration }

// hintFrom extracts a Retry-After hint from an error chain.
func hintFrom(err error) time.Duration {
	var h hinter
	if errors.As(err, &h) {
		return h.RetryAfterHint()
	}
	return 0
}

// Do runs fn under the policy: attempts are spaced by Delay, each
// bounded by PerAttemptTimeout, and the loop stops on success, a
// non-retryable error, context cancellation, or budget/attempt
// exhaustion.
func Do[T any](ctx context.Context, p Policy, fn func(context.Context) (T, error)) (T, error) {
	var zero T
	p = p.withDefaults()
	if ctx == nil {
		ctx = context.Background()
	}
	if p.Budget != nil {
		p.Budget.Deposit()
	}
	var lastErr error
	for attempt := 0; attempt < p.MaxAttempts; attempt++ {
		if attempt > 0 {
			if p.Budget != nil && !p.Budget.Withdraw() {
				return zero, fmt.Errorf("%w after %d attempts: %w", ErrBudget, attempt, lastErr)
			}
			delay := p.Delay(attempt-1, hintFrom(lastErr))
			if p.OnRetry != nil {
				p.OnRetry(attempt, delay, lastErr)
			}
			if err := Sleep(ctx, delay); err != nil {
				return zero, err
			}
		}
		attemptCtx, cancel := ctx, context.CancelFunc(nil)
		if p.PerAttemptTimeout > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, p.PerAttemptTimeout)
		}
		res, err := fn(attemptCtx)
		if cancel != nil {
			cancel()
		}
		if err == nil {
			return res, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return zero, fmt.Errorf("resilience: %w (last error: %w)", ctx.Err(), err)
		}
		if !retryable(err) {
			return zero, err
		}
	}
	return zero, fmt.Errorf("%w (%d attempts): %w", ErrExhausted, p.MaxAttempts, lastErr)
}

// Sleep waits for d or until ctx is done, whichever comes first.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ParseRetryAfter parses an HTTP Retry-After header value — integer
// seconds or an HTTP date — into a wait duration relative to now. The
// boolean reports whether the value parsed; negative waits clamp to 0.
func ParseRetryAfter(v string, now time.Time) (time.Duration, bool) {
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	if t, err := http.ParseTime(v); err == nil {
		d := t.Sub(now)
		if d < 0 {
			d = 0
		}
		return d, true
	}
	return 0, false
}

// Budget bounds the retry volume of a whole mining run: every initial
// request deposits, every retry withdraws, and withdrawals are allowed
// while retries < floor + ratio·requests. The floor keeps short runs
// from starving; the ratio keeps long runs from amplifying a tracker
// outage into a retry storm. Safe for concurrent use.
type Budget struct {
	mu       sync.Mutex
	floor    int
	ratio    float64
	requests int
	retries  int
	denied   int
}

// NewBudget returns a budget allowing floor retries outright plus
// ratio extra retries per request issued.
func NewBudget(floor int, ratio float64) *Budget {
	if floor < 0 {
		floor = 0
	}
	if ratio < 0 {
		ratio = 0
	}
	return &Budget{floor: floor, ratio: ratio}
}

// Deposit records one initial (non-retry) request.
func (b *Budget) Deposit() {
	b.mu.Lock()
	b.requests++
	b.mu.Unlock()
}

// Withdraw requests permission for one retry.
func (b *Budget) Withdraw() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.retries < b.floor+int(b.ratio*float64(b.requests)) {
		b.retries++
		return true
	}
	b.denied++
	return false
}

// Stats reports the budget's counters: requests deposited, retries
// granted, and retries denied.
func (b *Budget) Stats() (requests, retries, denied int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.requests, b.retries, b.denied
}
