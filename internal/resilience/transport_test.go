package resilience

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fastTransport returns a Transport with microsecond backoff so tests
// stay quick.
func fastTransport(b *Breaker) *Transport {
	return NewTransport(nil, Policy{
		MaxAttempts: 5, BaseDelay: time.Microsecond, MaxDelay: 20 * time.Microsecond,
	}, b)
}

func get(t *testing.T, rt http.RoundTripper, url string) (*http.Response, error) {
	t.Helper()
	client := &http.Client{Transport: rt}
	return client.Get(url)
}

func TestTransportRetriesTransientStatus(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) < 3 {
			http.Error(w, "busy", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, "payload")
	}))
	defer srv.Close()

	rt := fastTransport(nil)
	resp, err := get(t, rt, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "payload" {
		t.Errorf("body = %q", body)
	}
	m := rt.Metrics()
	if m.Requests != 1 || m.Attempts != 3 || m.Retries != 2 {
		t.Errorf("metrics = %+v, want 1 request, 3 attempts, 2 retries", m)
	}
}

func TestTransportHonorsRetryAfter(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, "rate limited", http.StatusTooManyRequests)
			return
		}
		fmt.Fprint(w, "ok")
	}))
	defer srv.Close()

	rt := fastTransport(nil)
	resp, err := get(t, rt, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if m := rt.Metrics(); m.RetryAfterSeen != 1 {
		t.Errorf("RetryAfterSeen = %d, want 1", m.RetryAfterSeen)
	}
}

func TestTransportReturnsLastResponseOnExhaustion(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "permanently busy", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	rt := fastTransport(nil)
	resp, err := get(t, rt, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want the final 503 passed through", resp.StatusCode)
	}
	if m := rt.Metrics(); m.Attempts != 5 {
		t.Errorf("attempts = %d, want MaxAttempts=5", m.Attempts)
	}
}

func TestTransportRetriesTruncatedBody(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			// Promise more bytes than we send, flush the header, then
			// abort: the client sees an unexpected EOF mid-body.
			w.Header().Set("Content-Length", "1000")
			_, _ = io.WriteString(w, "partial")
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
			panic(http.ErrAbortHandler)
		}
		fmt.Fprint(w, "complete")
	}))
	defer srv.Close()

	rt := fastTransport(nil)
	resp, err := get(t, rt, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil || string(body) != "complete" {
		t.Fatalf("body = %q, %v", body, err)
	}
	if m := rt.Metrics(); m.BodyRetries == 0 {
		t.Errorf("metrics = %+v, want a body retry", m)
	}
}

func TestTransportDoesNotRetryNonIdempotentBody(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "busy", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	rt := fastTransport(nil)
	// A streamed body with no GetBody cannot be rewound; the transport
	// must pass the 503 straight through after one attempt.
	req, err := http.NewRequest(http.MethodPost, srv.URL, struct{ io.Reader }{strings.NewReader("data")})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := (&http.Client{Transport: rt}).Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", resp.StatusCode)
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("server hits = %d, want 1 (no blind POST retries)", got)
	}
}

func TestTransportCapsBodySize(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write(make([]byte, 4096))
	}))
	defer srv.Close()

	rt := fastTransport(nil)
	rt.MaxBodyBytes = 1024
	_, err := get(t, rt, srv.URL)
	if err == nil || !strings.Contains(err.Error(), ErrBodyTooLarge.Error()) {
		t.Fatalf("err = %v, want ErrBodyTooLarge", err)
	}
}

func TestTransportBreakerOpensAndRecovers(t *testing.T) {
	var healthy atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !healthy.Load() {
			http.Error(w, "down", http.StatusBadGateway)
			return
		}
		fmt.Fprint(w, "ok")
	}))
	defer srv.Close()

	clk := &fakeClock{t: time.Unix(0, 0)}
	br := NewBreaker(BreakerConfig{
		FailureThreshold: 3, SuccessThreshold: 1,
		OpenTimeout: time.Minute, HalfOpenProbes: 1, Now: clk.now,
	})
	// MaxRetryAfter also caps the wait hint a breaker rejection carries
	// (the remaining open period), keeping this test fast.
	rt := NewTransport(nil, Policy{
		MaxAttempts: 2, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond,
		MaxRetryAfter: time.Millisecond,
	}, br)

	// Two failing requests (2 attempts each) trip the breaker.
	for i := 0; i < 2; i++ {
		resp, err := get(t, rt, srv.URL)
		if err == nil {
			_ = resp.Body.Close()
		}
	}
	if br.State() != StateOpen {
		t.Fatalf("breaker state = %v, want open", br.State())
	}
	// While open, attempts are rejected without touching the server.
	if _, err := get(t, rt, srv.URL); err == nil || !strings.Contains(err.Error(), ErrOpen.Error()) {
		t.Fatalf("err = %v, want circuit-open rejection", err)
	}
	if m := rt.Metrics(); m.BreakerRejected == 0 {
		t.Error("breaker rejections not counted")
	}
	// After the open period the probe goes through and closes it.
	healthy.Store(true)
	clk.advance(time.Minute)
	resp, err := get(t, rt, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if br.State() != StateClosed {
		t.Errorf("breaker state = %v after recovery, want closed", br.State())
	}
}

func TestTransportConnectionErrorRetries(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler) // drop every connection
	}))
	defer srv.Close()

	rt := fastTransport(nil)
	_, err := get(t, rt, srv.URL)
	if err == nil {
		t.Fatal("want error from a server that drops every connection")
	}
	if m := rt.Metrics(); m.Attempts < 2 {
		t.Errorf("attempts = %d, want retries on dropped connections", m.Attempts)
	}
}
