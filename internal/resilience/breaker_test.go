package resilience

import (
	"errors"
	"testing"
	"time"
)

// fakeClock lets breaker tests step time deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(clk *fakeClock) *Breaker {
	return NewBreaker(BreakerConfig{
		FailureThreshold: 3,
		SuccessThreshold: 2,
		OpenTimeout:      10 * time.Second,
		HalfOpenProbes:   1,
		Now:              clk.now,
	})
}

// fail records n failed admitted requests.
func fail(t *testing.T, b *Breaker, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("Allow() = %v before trip", err)
		}
		b.Record(false)
	}
}

func TestBreakerTripsAtThreshold(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newTestBreaker(clk)
	fail(t, b, 2)
	if b.State() != StateClosed {
		t.Fatalf("state = %v after 2 failures, want closed", b.State())
	}
	fail(t, b, 1)
	if b.State() != StateOpen {
		t.Fatalf("state = %v after 3 failures, want open", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("Allow() while open = %v, want ErrOpen", err)
	}
	if hint := hintFrom(b.Allow()); hint <= 0 || hint > 10*time.Second {
		t.Errorf("open rejection hint = %v, want (0, 10s]", hint)
	}
	opens, rejections := b.Counts()
	if opens != 1 || rejections != 2 {
		t.Errorf("counts = %d opens, %d rejections; want 1, 2", opens, rejections)
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newTestBreaker(clk)
	fail(t, b, 2)
	_ = b.Allow()
	b.Record(true) // streak broken
	fail(t, b, 2)
	if b.State() != StateClosed {
		t.Fatalf("state = %v, want closed (failures must be consecutive)", b.State())
	}
}

func TestBreakerHalfOpenRecovery(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newTestBreaker(clk)
	fail(t, b, 3)
	clk.advance(10 * time.Second)
	if b.State() != StateHalfOpen {
		t.Fatalf("state = %v after open timeout, want half-open", b.State())
	}
	// Only one probe slot: the second concurrent Allow is rejected.
	if err := b.Allow(); err != nil {
		t.Fatalf("probe Allow() = %v", err)
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("second probe Allow() = %v, want ErrOpen", err)
	}
	b.Record(true)
	if b.State() != StateHalfOpen {
		t.Fatalf("state = %v after 1 success, want half-open (threshold 2)", b.State())
	}
	_ = b.Allow()
	b.Record(true)
	if b.State() != StateClosed {
		t.Fatalf("state = %v after 2 successes, want closed", b.State())
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newTestBreaker(clk)
	fail(t, b, 3)
	clk.advance(10 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe Allow() = %v", err)
	}
	b.Record(false)
	if b.State() != StateOpen {
		t.Fatalf("state = %v after failed probe, want open", b.State())
	}
	// The fresh open period starts from the failed probe.
	clk.advance(9 * time.Second)
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("Allow() = %v, want ErrOpen until the new timeout elapses", err)
	}
	clk.advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("Allow() = %v after second timeout, want probe admitted", err)
	}
	opens, _ := b.Counts()
	if opens != 2 {
		t.Errorf("opens = %d, want 2", opens)
	}
}

func TestBreakerStateStrings(t *testing.T) {
	for state, want := range map[BreakerState]string{
		StateClosed: "closed", StateOpen: "open", StateHalfOpen: "half-open",
	} {
		if got := state.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", state, got, want)
		}
	}
}
