// Mining: the §II-B data-collection pipeline end to end over real TCP —
// start the JIRA-like and GitHub-like simulators on loopback ports,
// mine every critical bug through their REST APIs with the typed
// clients, and summarize what came back.
//
//	go run ./examples/mining
package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"sdnbugs/internal/corpus"
	"sdnbugs/internal/ghsim"
	"sdnbugs/internal/jirasim"
	"sdnbugs/internal/report"
	"sdnbugs/internal/tracker"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mining:", err)
		os.Exit(1)
	}
}

// serve starts an HTTP server on a random loopback port and returns
// its base URL and a shutdown function.
func serve(h http.Handler) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}
	return "http://" + ln.Addr().String(), stop, nil
}

func run() error {
	fmt.Println("Generating the critical-bug corpus and loading the trackers...")
	corp, err := corpus.Generate(1)
	if err != nil {
		return err
	}
	jiraStore, ghStore := tracker.NewStore(), tracker.NewStore()
	for _, iss := range corp.Issues {
		store := ghStore
		if tracker.TrackerFor(iss.Controller) == tracker.KindJIRA {
			store = jiraStore
		}
		if err := store.Put(iss); err != nil {
			return err
		}
	}
	jiraURL, stopJira, err := serve(jirasim.NewHandler(jiraStore))
	if err != nil {
		return err
	}
	defer stopJira()
	ghURL, stopGH, err := serve(ghsim.NewHandler(ghStore, "faucetsdn", "faucet"))
	if err != nil {
		return err
	}
	defer stopGH()
	fmt.Printf("JIRA simulator:   %s (%d issues)\n", jiraURL, jiraStore.Len())
	fmt.Printf("GitHub simulator: %s (%d issues)\n\n", ghURL, ghStore.Len())

	ctx := context.Background()
	tbl := &report.Table{Title: "Mined critical bugs (§II-B)",
		Headers: []string{"controller", "tracker", "mined", "closed", "with resolution time"}}

	jc := jirasim.Client{BaseURL: jiraURL, PageSize: 100}
	for _, project := range []string{"ONOS", "CORD"} {
		results, err := jc.FetchAll(ctx, jirasim.SearchOptions{Project: project})
		if err != nil {
			return err
		}
		var closed, timed int
		for _, r := range results {
			if r.Issue.Status == tracker.StatusClosed {
				closed++
			}
			if _, ok := r.Issue.ResolutionTime(); ok {
				timed++
			}
		}
		_ = tbl.AddRow(project, "jira", fmt.Sprint(len(results)), fmt.Sprint(closed), fmt.Sprint(timed))
	}

	gc := ghsim.Client{BaseURL: ghURL, Repo: "faucetsdn/faucet", PerPage: 100}
	issues, err := gc.FetchAll(ctx, "")
	if err != nil {
		return err
	}
	var closed, timed, critical int
	for _, iss := range issues {
		if iss.Status == tracker.StatusClosed {
			closed++
		}
		if _, ok := iss.ResolutionTime(); ok {
			timed++
		}
		if iss.Severity.Critical() {
			critical++
		}
	}
	_ = tbl.AddRow("FAUCET", "github", fmt.Sprint(len(issues)), fmt.Sprint(closed), fmt.Sprint(timed))
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}

	fmt.Printf("\nGitHub has no severity field: the keyword heuristic flagged %d/%d\n", critical, len(issues))
	fmt.Println("FAUCET issues as critical-band, and (as in the paper, §VIII) no")
	fmt.Println("resolution timestamps are available on the GitHub path.")
	return nil
}
