// Engine-run: drive the experiment suite through the concurrent
// engine — ID-set selection, a bounded worker pool, streamed
// start/finish events, and the timing report that shows where the
// wall-clock time went.
//
//	go run ./examples/engine-run
//	go run ./examples/engine-run -parallel 8 -ids E01,E08,A06
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"sdnbugs"
	"sdnbugs/internal/engine"
)

func main() {
	parallel := flag.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS)")
	ids := flag.String("ids", "E02,E05,E13,E14,E15", "comma-separated experiment/ablation ids")
	seed := flag.Int64("seed", 1, "suite seed")
	flag.Parse()
	if err := run(*seed, *parallel, *ids); err != nil {
		fmt.Fprintln(os.Stderr, "engine-run:", err)
		os.Exit(1)
	}
}

func run(seed int64, parallel int, ids string) error {
	suite := sdnbugs.NewSuite(seed)
	res, err := suite.Run(context.Background(), sdnbugs.RunOptions{
		IDs:         engine.ParseIDs(ids),
		Parallelism: parallel,
		// The engine serializes event delivery, so the hook can print
		// without its own locking.
		OnEvent: func(ev engine.Event) {
			switch ev.Type {
			case engine.EventStart:
				fmt.Printf("[%d/%d] %s  %s\n", ev.Index+1, ev.Total, ev.ID, ev.Title)
			case engine.EventFinish:
				status := "done"
				if ev.Err != nil {
					status = "ERROR " + ev.Err.Error()
				}
				fmt.Printf("[%d/%d] %s  %s (%s)\n", ev.Index+1, ev.Total, ev.ID, status, ev.Duration)
			}
		},
	})
	if err != nil {
		return err
	}

	rep := engine.NewReport(res)
	fmt.Println()
	fmt.Println(rep.Summary())
	fmt.Println()
	if err := rep.TimingTable().Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	if err := rep.SlowestTable(3).Render(os.Stdout); err != nil {
		return err
	}
	for _, f := range rep.Failures() {
		fmt.Println("failure:", f)
	}
	return res.Err()
}
