// Recovery-eval: a narrated walk through one fault-injection trial —
// inject the FAUCET-1623 analog (an unhandled broadcast edge case),
// watch the gray failure appear, try a naive restart (fails: the bug
// is deterministic), then STS-style event transformation (succeeds by
// steering the poison input onto a different code path).
//
//	go run ./examples/recovery-eval
package main

import (
	"fmt"
	"os"

	"sdnbugs/internal/faultlab"
	"sdnbugs/internal/recovery"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "recovery-eval:", err)
		os.Exit(1)
	}
}

func run() error {
	var fault *faultlab.Fault
	for _, f := range faultlab.StandardSuite(1) {
		if f.Spec.Name == "FAUCET-1623-missing-logic" {
			fault = f
		}
	}
	fmt.Printf("Injecting %s: cause=%s trigger=%s deterministic=%v\n\n",
		fault.Spec.Name, fault.Spec.Cause, fault.Spec.Trigger, fault.Spec.Deterministic)

	lab, err := faultlab.NewLab(fault)
	if err != nil {
		return err
	}
	obs, err := lab.RunWorkload()
	if err != nil {
		return err
	}
	fmt.Printf("1. Workload under the buggy controller:\n")
	fmt.Printf("   symptom    = %v (%s)\n", obs.Symptom, obs.Detail)
	fmt.Printf("   unicast    = %.0f%% reachable (gray failure: only mirror-VLAN broadcast is broken)\n\n",
		obs.Connectivity*100)

	fmt.Println("2. Attempting crash-restart recovery...")
	if err := (recovery.CrashRestart{}).Recover(lab); err != nil {
		return err
	}
	lab.ClearHealth()
	post, err := lab.RunWorkload()
	if err != nil {
		return err
	}
	fmt.Printf("   post-restart symptom = %v — the bug is deterministic; the same\n", post.Symptom)
	fmt.Printf("   input re-triggers it (§III: replay-based recovery has limited use)\n\n")

	fmt.Println("3. Attempting STS-style event transformation...")
	et := &recovery.EventTransform{}
	if err := et.Recover(lab); err != nil {
		return err
	}
	lab.ClearHealth()
	post, err = lab.RunWorkload()
	if err != nil {
		return err
	}
	if post.Healthy() {
		fmt.Println("   post-transform symptom = none — rewriting the poison packet's VLAN")
		fmt.Println("   routes it through a healthy code path while traffic keeps flowing")
		fmt.Println("   (§V-A: \"alter properties of the network event such that different")
		fmt.Println("   code paths and cases are explored\")")
	} else {
		fmt.Printf("   post-transform symptom = %v (%s)\n", post.Symptom, post.Detail)
	}
	return nil
}
