// Smell-trend: the §VI-A software-engineering analysis as a sparkline
// report — six smells across the ONOS release train, with the paper's
// reading of each trend.
//
//	go run ./examples/smell-trend
package main

import (
	"fmt"
	"os"
	"strings"

	"sdnbugs/internal/codemodel"
	"sdnbugs/internal/smell"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "smell-trend:", err)
		os.Exit(1)
	}
}

// spark renders an integer series as a unicode sparkline.
func spark(vals []int) string {
	ramp := []rune("▁▂▃▄▅▆▇█")
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		idx := 0
		if hi > lo {
			idx = (v - lo) * (len(ramp) - 1) / (hi - lo)
		}
		b.WriteRune(ramp[idx])
	}
	return b.String()
}

func run() error {
	pts, err := smell.Trend(codemodel.ONOSReleases(), 1)
	if err != nil {
		return err
	}
	var versions []string
	series := map[smell.Kind][]int{}
	for _, p := range pts {
		versions = append(versions, p.Version)
		for _, k := range smell.Kinds() {
			series[k] = append(series[k], p.Counts[k])
		}
	}
	fmt.Printf("ONOS releases: %s\n\n", strings.Join(versions, " → "))

	readings := map[smell.Kind]string{
		smell.GodComponent:               "constant: technical debt is not being paid down",
		smell.UnstableDependency:         "declining: dependencies became safer to change",
		smell.InsufficientModularization: "spike then plateau: early prototyping bloat never refactored",
		smell.BrokenHierarchy:            "spike then recovery: the ONOS-6594 hierarchy cleanup",
		smell.HubLikeModularization:      "low and flat",
		smell.MissingHierarchy:           "low and flat",
	}
	for _, k := range smell.Kinds() {
		vals := series[k]
		class := "design      "
		if k.Architecture() {
			class = "architecture"
		}
		fmt.Printf("%-28s [%s]  %s  %v\n    ↳ %s\n",
			k, class, spark(vals), vals, readings[k])
	}

	first, last := pts[0], pts[len(pts)-1]
	fmt.Printf("\nClasses grew %d → %d while god components stayed ~constant —\n",
		first.Classes, last.Classes)
	fmt.Println("the paper's sign that growth concentrates in already-oversized components.")
	return nil
}
