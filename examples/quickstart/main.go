// Quickstart: generate the calibrated bug corpus, build the study, and
// print the paper's headline distributions (RQ1, RQ2, RQ3).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"sdnbugs"
	"sdnbugs/internal/report"
	"sdnbugs/internal/taxonomy"
	"sdnbugs/internal/tracker"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	suite := sdnbugs.NewSuite(1)

	corp, err := suite.Corpus()
	if err != nil {
		return err
	}
	fmt.Printf("Generated %d critical bugs (FAUCET %d, ONOS %d, CORD %d); manual set %d\n\n",
		len(corp.Issues),
		len(corp.ByController(tracker.FAUCET)),
		len(corp.ByController(tracker.ONOS)),
		len(corp.ByController(tracker.CORD)),
		len(corp.ManualIDs))

	full, err := suite.Full()
	if err != nil {
		return err
	}

	// RQ1: bug types.
	det := full.DeterminismByController()
	t1 := &report.Table{Title: "RQ1 — deterministic bug share (§III)",
		Headers: []string{"controller", "deterministic"}}
	for _, ctl := range tracker.Controllers() {
		_ = t1.AddRow(ctl.String(), report.Pct(det[ctl]))
	}
	if err := t1.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()

	// RQ2: symptoms.
	t2 := &report.Table{Title: "RQ2 — operational impact (§IV)",
		Headers: []string{"symptom", "share"}}
	for _, sh := range full.Distribution(taxonomy.DimSymptom) {
		_ = t2.AddRow(sh.Category, report.Pct(sh.Fraction))
	}
	if err := t2.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()

	// RQ3: triggers.
	t3 := &report.Table{Title: "RQ3 — bug triggers (§V-A)",
		Headers: []string{"trigger", "share"}}
	for _, sh := range full.Distribution(taxonomy.DimTrigger) {
		_ = t3.AddRow(sh.Category, report.Pct(sh.Fraction))
	}
	if err := t3.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()

	// A peek at one generated bug report.
	iss := corp.Issues[0]
	fmt.Printf("Sample bug %s (%s):\n  %s\n  %s\n",
		iss.ID, corp.Labels[iss.ID].Symptom, iss.Title, iss.Description)
	return nil
}
