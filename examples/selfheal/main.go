// Selfheal: a narrated walk through the supervised runtime — wrap a
// controller carrying a transient crash fault and a deterministic
// poison input in the supervisor, watch a fail-stop get healed by
// restart-and-retry, watch the poison class get shed after repeated
// failed recoveries, then see a checkpoint shrink the next restart.
//
//	go run ./examples/selfheal
package main

import (
	"fmt"
	"os"

	"sdnbugs/internal/faultlab"
	"sdnbugs/internal/sdn"
	"sdnbugs/internal/supervise"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "selfheal:", err)
		os.Exit(1)
	}
}

func pick(seed int64, name string) *faultlab.Fault {
	for _, f := range faultlab.StandardSuite(seed) {
		if f.Spec.Name == name {
			return f
		}
	}
	panic("unknown fault " + name)
}

func run() error {
	// Two faults armed at once: a slow memory leak that eventually
	// fail-stops (transient — a restart clears it) and the
	// deterministic multicast-config poison crash.
	lab, err := faultlab.NewMultiLab([]*faultlab.Fault{
		pick(1, "ONOS-4859-memory-leak"),
		pick(1, "CORD-2470-misconfig-crash"),
	})
	if err != nil {
		return err
	}

	sup := supervise.New(lab.C, supervise.Config{
		BaselineMeanCost: lab.BaselineMeanCost(),
		CheckpointEvery:  8,
		Classify:         faultlab.ClassifyEvent,
		OnRestart:        lab.NewIncarnations,
	})
	lab.Filter = sup.Filter

	submit := func(label string, ev sdn.Event) {
		out := sup.Submit(ev)
		fmt.Printf("  %-34s -> %-9s (state=%s, restarts=%d)\n",
			label, out, lab.C.State, sup.Metrics.Restarts)
	}

	fmt.Println("1. Healthy traffic builds state and periodic checkpoints:")
	for i := 0; i < 10; i++ {
		submit(fmt.Sprintf("config vlan.zone%d=100", i),
			sdn.Event{Kind: sdn.EventConfig, Key: fmt.Sprintf("vlan.zone%d", i), Value: "100"})
	}
	fmt.Printf("  checkpoints taken: %d\n\n", sup.Metrics.Checkpoints)

	fmt.Println("2. Traffic leaks memory until the controller fail-stops; the")
	fmt.Println("   supervisor restarts from the checkpoint and retries the event:")
	hosts := lab.C.Net.Hosts()
	for i := 0; i < 20; i++ {
		src, dst := hosts[i%len(hosts)], hosts[(i+1)%len(hosts)]
		lab.C.Net.DrainDeliveries()
		if _, err := lab.C.Net.InjectFromHost(src, sdn.Packet{EthDst: dst, EthType: 0x0800}); err != nil {
			return err
		}
		for {
			pis := lab.C.Net.DrainPacketIns()
			if len(pis) == 0 {
				break
			}
			for j := range pis {
				pi := pis[j]
				healedBefore := sup.Metrics.EventsHealed
				out := sup.Submit(sdn.Event{Kind: sdn.EventNetwork, Msg: &pi})
				if sup.Metrics.EventsHealed > healedBefore {
					fmt.Printf("  packet-in %-23s -> %-9s (restarts=%d, from checkpoint=%d)\n",
						fmt.Sprintf("(crash on #%d)", i), out,
						sup.Metrics.Restarts, sup.Metrics.CheckpointRestores)
				}
			}
		}
	}
	fmt.Printf("  healed: %d of %d offered (lost: %d)\n\n",
		sup.Metrics.EventsHealed, sup.Metrics.EventsOffered, sup.Metrics.EventsLost)

	fmt.Println("3. A deterministic poison config keeps crashing; after the")
	fmt.Println("   degradation threshold its class is shed, not the whole feed:")
	for i := 0; i < 3; i++ {
		submit("config multicast.group1=225",
			sdn.Event{Kind: sdn.EventConfig, Key: "multicast.group1", Value: "225"})
	}
	fmt.Printf("  shed classes: %v\n", sup.ShedClasses())
	submit("config vlan.zone0=200 (sibling class)",
		sdn.Event{Kind: sdn.EventConfig, Key: "vlan.zone0", Value: "200"})

	m := sup.Metrics
	fmt.Printf("\nFinal: availability %.3f, %d incidents, %d restarts "+
		"(%d from checkpoint, %d cold), MTTR %.1f ticks\n",
		m.EventAvailability(), m.Incidents, m.Restarts,
		m.CheckpointRestores, m.ColdRestores, m.MTTR())
	if !sup.Alive() {
		return fmt.Errorf("controller died under supervision")
	}
	return nil
}
