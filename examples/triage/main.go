// Triage: the §VII-B operator-diagnosis workflow. An incoming bug
// report is auto-classified by the NLP pipeline, then the strong
// category correlations narrow down likely root causes and fixes —
// the "decision tree for diagnosis" the paper anticipates.
//
//	go run ./examples/triage
//	go run ./examples/triage -text "controller crashed after reloading the YAML config"
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"sdnbugs"
	"sdnbugs/internal/report"
	"sdnbugs/internal/taxonomy"
	"sdnbugs/internal/tracker"
)

const defaultReport = `The controller process crashes and must be restarted; ` +
	`we observed a hard crash with the stack trace attached. The faulty behaviour ` +
	`starts right after a config push and is reliably reproducible every time. ` +
	`A null pointer dereference is involved.`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "triage:", err)
		os.Exit(1)
	}
}

func run() error {
	text := flag.String("text", defaultReport, "incoming bug report text")
	seed := flag.Int64("seed", 1, "suite seed")
	flag.Parse()

	suite := sdnbugs.NewSuite(*seed)
	fmt.Println("Training the NLP pipeline on the manual-analysis set (150 bugs)...")
	p, err := suite.Pipeline()
	if err != nil {
		return err
	}

	fmt.Printf("\nIncoming report:\n  %q\n\n", *text)
	label, err := p.Predict(tracker.Issue{Description: *text})
	if err != nil {
		return err
	}
	tbl := &report.Table{Title: "Predicted classification",
		Headers: []string{"dimension", "prediction"}}
	for _, d := range taxonomy.Dimensions() {
		_ = tbl.AddRow(d.String(), label.Tag(d))
	}
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}

	// Diagnosis shortcuts: strong correlations involving the predicted
	// tags (the paper: e.g. third-party calls ↔ add-compatibility).
	manual, err := suite.Manual()
	if err != nil {
		return err
	}
	predicted := map[string]bool{}
	for _, d := range taxonomy.Dimensions() {
		predicted[label.Tag(d)] = true
	}
	hints := &report.Table{Title: "Correlation hints for this class (§VII-B)",
		Headers: []string{"if", "then likely", "phi"}}
	n := 0
	for _, pair := range manual.StrongPairs(0.25) {
		if n >= 6 {
			break
		}
		if predicted[pair.TagA] || predicted[pair.TagB] {
			_ = hints.AddRow(pair.TagA, pair.TagB, fmt.Sprintf("%.2f", math.Abs(pair.Phi)))
			n++
		}
	}
	fmt.Println()
	return hints.Render(os.Stdout)
}
