//go:build race

package sdnbugs

// raceEnabled gates the heavyweight end-to-end determinism tests: the
// race pass covers the parallel validation grid through the cheap
// internal/study tests instead, keeping `make race` inside the
// per-package test timeout on slow machines.
const raceEnabled = true
