package sdnbugs

import (
	"fmt"

	"sdnbugs/internal/engine"
	"sdnbugs/internal/faultlab"
	"sdnbugs/internal/report"
)

// registerClusterExperiments registers the controller HA experiment
// (E26) after the repair loop — the last rung of the resilience
// ladder: supervise one controller, repair its inputs, and finally
// replicate it so even fail-stop crashes cost a failover, not a cold
// replay.
func (s *Suite) registerClusterExperiments(r *engine.Registry[ExperimentResult]) {
	registerSuite(r, "E26", "controller HA: replicated ensemble failover vs cold-replay restart",
		engine.KindExperiment, s.E26ClusterFailover)
}

// E26ClusterFailover reproduces the paper's control-plane findings at
// the ensemble level: controller crashes and mastership confusion are
// among the most damaging SDN failure classes, and the standard
// mitigation is a replicated controller cluster with leader election
// and OpenFlow mastership handoff. The campaign plays one
// seed-deterministic schedule through an N-replica ensemble under
// induced primary crashes, partitions, and asymmetric links, and
// checks: no event is ever lost; every deposed-primary write bounces
// off the fencing token (log and wire); failover is cheaper than the
// supervised baseline's cold full-log replay; availability strictly
// beats the single-controller baseline; and the ensemble's converged
// state is byte-identical to an unfaulted run — crashes and all.
func (s *Suite) E26ClusterFailover() (ExperimentResult, error) {
	res := ExperimentResult{ID: "E26",
		Title: "controller HA: replicated ensemble failover vs cold-replay restart"}

	cfg := faultlab.ClusterCampaignConfig{Seed: s.Seed}
	run, err := faultlab.RunClusterCampaign(cfg)
	if err != nil {
		return res, fmt.Errorf("sdnbugs: cluster campaign: %w", err)
	}
	rerun, err := faultlab.RunClusterCampaign(cfg)
	if err != nil {
		return res, fmt.Errorf("sdnbugs: cluster campaign rerun: %w", err)
	}

	cl, base, truth := run.Cluster, run.Baseline, run.Unfaulted
	res.Checks = append(res.Checks,
		report.Check{Artifact: "E26", Metric: "zero lost events across induced failovers",
			Paper: "replication with log shipping and event re-homing makes controller crashes lossless",
			Measured: fmt.Sprintf("%d failovers (%d elections), %d/%d events lost, log %d vs unfaulted %d",
				cl.Failovers, cl.Elections, cl.Lost, cl.Offered, cl.LogLen, truth.LogLen),
			Holds: cl.Failovers > 0 && cl.Lost == 0 && cl.LogLen == truth.LogLen},
		report.Check{Artifact: "E26", Metric: "zero fenced-write leaks",
			Paper: "generation-id fencing closes the dual-master window: a deposed primary mutates nothing",
			Measured: fmt.Sprintf("%d stale writes rejected (%d at the wire as OFPRRFC_STALE), %d leaked",
				cl.FencedRejects, cl.WireStaleRejects, cl.FencedLeaks),
			Holds: cl.FencedRejects > 0 && cl.WireStaleRejects > 0 && cl.FencedLeaks == 0},
		report.Check{Artifact: "E26", Metric: "failover cheaper than cold replay",
			Paper: "a warm standby resumes from replicated state; a restarted singleton replays its whole log",
			Measured: fmt.Sprintf("mean failover %.1f ticks vs mean cold restore %.1f ticks (%d cold restores)",
				cl.MeanFailoverTicks, base.MeanColdRestoreTicks, base.ColdRestores),
			Holds: base.ColdRestores > 0 && cl.MeanFailoverTicks < base.MeanColdRestoreTicks},
		report.Check{Artifact: "E26", Metric: "availability strictly above the single-controller baseline",
			Paper: "controller redundancy is what turns fail-stop bugs from outages into blips",
			Measured: fmt.Sprintf("cluster %.4f vs supervised singleton %.4f (same crash schedule)",
				cl.TimeAvailability(), base.TimeAvailability()),
			Holds: cl.TimeAvailability() > base.TimeAvailability()},
		report.Check{Artifact: "E26", Metric: "byte-identical state to the unfaulted run, on every replica",
			Paper: "deterministic log replication means failover is invisible in the converged state",
			Measured: fmt.Sprintf("cluster %s vs unfaulted %s across %d replicas; rerun identical=%v",
				cl.Fingerprint, truth.Fingerprint, len(cl.ReplicaFingerprints),
				run.Fingerprint() == rerun.Fingerprint()),
			Holds: run.Identical() && run.Fingerprint() == rerun.Fingerprint()},
	)

	tbl := &report.Table{Title: "Failover campaign by mode (E26, seed-deterministic schedule)",
		Headers: []string{"mode", "offered", "lost", "failovers", "restarts", "mean recovery ticks", "availability", "fingerprint"}}
	for _, m := range []ClusterModeRow{
		{run.Cluster, fmt.Sprintf("%.1f", cl.MeanFailoverTicks)},
		{run.Baseline, fmt.Sprintf("%.1f", base.MeanColdRestoreTicks)},
		{run.Unfaulted, "0.0"},
	} {
		r := m.Run
		_ = tbl.AddRow(r.Mode, fmt.Sprintf("%d", r.Offered), fmt.Sprintf("%d", r.Lost),
			fmt.Sprintf("%d", r.Failovers), fmt.Sprintf("%d", r.Restarts),
			m.Recovery, fmt.Sprintf("%.4f", r.TimeAvailability()), r.Fingerprint)
	}
	res.Tables = append(res.Tables, tbl)

	anatomy := &report.Table{Title: "Ensemble failover anatomy (E26)",
		Headers: []string{"metric", "value"}}
	_ = anatomy.AddRow("elections won", fmt.Sprintf("%d", cl.Elections))
	_ = anatomy.AddRow("elections failed (asymmetric links, no quorum)", fmt.Sprintf("%d", cl.FailedElections))
	_ = anatomy.AddRow("lease wait ticks", fmt.Sprintf("%d", cl.LeaseWaitTicks))
	_ = anatomy.AddRow("fenced writes rejected", fmt.Sprintf("%d", cl.FencedRejects))
	_ = anatomy.AddRow("wire role requests rejected stale", fmt.Sprintf("%d", cl.WireStaleRejects))
	_ = anatomy.AddRow("fenced-write leaks", fmt.Sprintf("%d", cl.FencedLeaks))
	res.Tables = append(res.Tables, anatomy)
	return res, nil
}

// ClusterModeRow pairs one mode's result with its recovery-cost cell.
type ClusterModeRow struct {
	Run      faultlab.ClusterRunResult
	Recovery string
}
