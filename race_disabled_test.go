//go:build !race

package sdnbugs

const raceEnabled = false
