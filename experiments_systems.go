package sdnbugs

import (
	"fmt"
	"time"

	"sdnbugs/internal/burn"
	"sdnbugs/internal/codemodel"
	"sdnbugs/internal/depscan"
	"sdnbugs/internal/engine"
	"sdnbugs/internal/recovery"
	"sdnbugs/internal/report"
	"sdnbugs/internal/smell"
	"sdnbugs/internal/study"
	"sdnbugs/internal/taxonomy"
	"sdnbugs/internal/tracker"
	"sdnbugs/internal/vcs"
)

// registerSystemsExperiments registers the systems-analysis
// experiments (E11–E20) with the engine in paper order.
func (s *Suite) registerSystemsExperiments(r *engine.Registry[ExperimentResult]) {
	registerSuite(r, "E11", "Figure 14: unique topic percentage per category", engine.KindExperiment, s.E11TopicUniqueness)
	registerSuite(r, "E12", "Figure 13: predicted trigger distribution over the full corpus", engine.KindExperiment, s.E12FullDatasetPrediction)
	registerSuite(r, "E13", "Figure 8: code smells across ONOS releases", engine.KindExperiment, s.E13SmellTrend)
	registerSuite(r, "E14", "Figure 10: commits per ONOS release", engine.KindExperiment, s.E14CommitsPerRelease)
	registerSuite(r, "E15", "Figure 11: FAUCET commit distribution", engine.KindExperiment, s.E15FaucetBurn)
	registerSuite(r, "E16", "Table IV: FAUCET dependency burn-down", engine.KindExperiment, s.E16DependencyBurn)
	registerSuite(r, "E17", "§V-A: ONOS dependency vulnerabilities over versions", engine.KindExperiment, s.E17VulnerabilityScan)
	registerSuite(r, "E18", "§VII-A / Table VI: controller selection guideline", engine.KindExperiment, s.E18ControllerSelection)
	registerSuite(r, "E19", "Table VII: recovery-framework coverage (empirical)", engine.KindExperiment, s.E19RecoveryCoverage)
	registerSuite(r, "E20", "§IX: symptom shares across domains", engine.KindExperiment, s.E20CrossDomainComparison)
}

// E11TopicUniqueness reproduces Figure 14: topic uniqueness per
// category via NMF over the manual set.
func (s *Suite) E11TopicUniqueness() (ExperimentResult, error) {
	res := ExperimentResult{ID: "E11", Title: "Figure 14: unique topic percentage per category"}
	manual, err := s.Manual()
	if err != nil {
		return res, err
	}
	scores, err := manual.TopicUniquenessAnalysis(study.TopicConfig{Rank: 12, Seed: s.Seed})
	if err != nil {
		return res, err
	}
	tbl := &report.Table{Title: "Topic uniqueness (Figure 14)",
		Headers: []string{"dimension", "category", "uniqueness", "support"}}
	rank := map[string]int{}
	for i, sc := range scores {
		rank[sc.Tag] = i
		if i < 12 {
			_ = tbl.AddRow(sc.Dimension.String(), sc.Tag, report.F2(sc.Score),
				fmt.Sprintf("%d", sc.Support))
		}
	}
	res.Tables = append(res.Tables, tbl)

	// The paper's Figure 14 highlights deterministic, byzantine,
	// add-synchronization and third-party categories as uniquely
	// worded. Verify they rank in the top half of all scored tags.
	half := len(scores) / 2
	for _, tag := range []string{"deterministic", "byzantine"} {
		pos, ok := rank[tag]
		res.Checks = append(res.Checks, report.Check{
			Artifact: "E11", Metric: tag + " topic uniqueness rank",
			Paper:    "among the most unique",
			Measured: fmt.Sprintf("rank %d of %d", pos+1, len(scores)),
			Holds:    ok && pos <= half,
		})
	}
	return res, nil
}

// E12FullDatasetPrediction reproduces Figure 13: the trained pipeline
// labels the whole corpus and the predicted trigger distribution keeps
// configuration dominant with network events a small share.
func (s *Suite) E12FullDatasetPrediction() (ExperimentResult, error) {
	res := ExperimentResult{ID: "E12", Title: "Figure 13: predicted trigger distribution over the full corpus"}
	p, err := s.Pipeline()
	if err != nil {
		return res, err
	}
	corp, err := s.Corpus()
	if err != nil {
		return res, err
	}
	labels, err := p.PredictAll(corp.Issues)
	if err != nil {
		return res, err
	}
	// Figure 13's five classes: configuration, system calls,
	// third-party calls, application calls, network events (external
	// calls split by kind); reboot is reported alongside.
	counts := map[string]int{}
	for _, l := range labels {
		switch l.Trigger {
		case taxonomy.TriggerExternalCall:
			counts[l.ExternalKind.String()]++
		default:
			counts[l.Trigger.String()]++
		}
	}
	n := float64(len(labels))
	tbl := &report.Table{Title: "Predicted triggers over full data set (Figure 13)",
		Headers: []string{"class", "share"}}
	order := []string{
		"configuration", "system-call", "third-party-call",
		"application-call", "network-event", "hardware-reboot",
	}
	shares := map[string]float64{}
	for _, cls := range order {
		shares[cls] = float64(counts[cls]) / n
		_ = tbl.AddRow(cls, report.Pct(shares[cls]))
	}
	res.Tables = append(res.Tables, tbl)

	maxOther := 0.0
	for cls, sh := range shares {
		if cls != "configuration" && sh > maxOther {
			maxOther = sh
		}
	}
	res.Checks = append(res.Checks,
		report.Check{Artifact: "E12", Metric: "configuration is the dominant predicted trigger",
			Paper: "configuration major", Measured: report.Pct(shares["configuration"]),
			Holds: shares["configuration"] > maxOther},
		report.Check{Artifact: "E12", Metric: "network events contribute a small part",
			Paper: "only a small part", Measured: report.Pct(shares["network-event"]),
			Holds: shares["network-event"] < shares["configuration"]},
	)
	return res, nil
}

// E13SmellTrend reproduces Figure 8: smell scores across ONOS releases.
func (s *Suite) E13SmellTrend() (ExperimentResult, error) {
	res := ExperimentResult{ID: "E13", Title: "Figure 8: code smells across ONOS releases"}
	pts, err := smell.Trend(codemodel.ONOSReleases(), s.Seed)
	if err != nil {
		return res, err
	}
	tbl := &report.Table{Title: "Smell counts per release (Figure 8)",
		Headers: []string{"version", "god", "unstable-dep", "insufficient-mod", "broken-hier", "hub-like", "missing-hier", "classes"}}
	for _, p := range pts {
		_ = tbl.AddRow(p.Version,
			fmt.Sprintf("%d", p.Counts[smell.GodComponent]),
			fmt.Sprintf("%d", p.Counts[smell.UnstableDependency]),
			fmt.Sprintf("%d", p.Counts[smell.InsufficientModularization]),
			fmt.Sprintf("%d", p.Counts[smell.BrokenHierarchy]),
			fmt.Sprintf("%d", p.Counts[smell.HubLikeModularization]),
			fmt.Sprintf("%d", p.Counts[smell.MissingHierarchy]),
			fmt.Sprintf("%d", p.Classes))
	}
	res.Tables = append(res.Tables, tbl)

	first, mid, last := pts[0], pts[2], pts[len(pts)-1]
	godDrift := last.Counts[smell.GodComponent] - first.Counts[smell.GodComponent]
	res.Checks = append(res.Checks,
		report.Check{Artifact: "E13", Metric: "god component ~constant",
			Paper: "mainly constant", Measured: fmt.Sprintf("drift %+d", godDrift),
			Holds: godDrift >= -2 && godDrift <= 2},
		report.Check{Artifact: "E13", Metric: "unstable dependencies decline 1.12→2.3",
			Paper: "decreased steadily",
			Measured: fmt.Sprintf("%d → %d", first.Counts[smell.UnstableDependency],
				last.Counts[smell.UnstableDependency]),
			Holds: last.Counts[smell.UnstableDependency] < first.Counts[smell.UnstableDependency]},
		report.Check{Artifact: "E13", Metric: "design-smell spike 1.12–1.14",
			Paper: "initial spike",
			Measured: fmt.Sprintf("insufficient-mod %d → %d", first.Counts[smell.InsufficientModularization],
				mid.Counts[smell.InsufficientModularization]),
			Holds: mid.Counts[smell.InsufficientModularization] > first.Counts[smell.InsufficientModularization]},
		report.Check{Artifact: "E13", Metric: "broken hierarchy recedes after 1.14 (ONOS-6594)",
			Paper: "reduction 1.14–2.3",
			Measured: fmt.Sprintf("%d → %d", mid.Counts[smell.BrokenHierarchy],
				last.Counts[smell.BrokenHierarchy]),
			Holds: last.Counts[smell.BrokenHierarchy] < mid.Counts[smell.BrokenHierarchy]},
		report.Check{Artifact: "E13", Metric: "classes grow while modularity does not",
			Paper:    "intent.impl 49 → 107 classes",
			Measured: fmt.Sprintf("total classes %d → %d", first.Classes, last.Classes),
			Holds:    last.Classes > first.Classes},
	)
	return res, nil
}

// E14CommitsPerRelease reproduces Figure 10.
func (s *Suite) E14CommitsPerRelease() (ExperimentResult, error) {
	res := ExperimentResult{ID: "E14", Title: "Figure 10: commits per ONOS release"}
	var schedule []int
	var versions []string
	for _, p := range codemodel.ONOSReleases() {
		schedule = append(schedule, p.Commits)
		versions = append(versions, p.Version)
	}
	h, releases, err := vcs.GenerateONOS(schedule, time.Time{}, s.Seed)
	if err != nil {
		return res, err
	}
	got, err := burn.CommitsPerRelease(h, releases)
	if err != nil {
		return res, err
	}
	tbl := &report.Table{Title: "Commits per release (Figure 10)",
		Headers: []string{"version", "commits"}}
	for i, v := range versions {
		_ = tbl.AddRow(v, fmt.Sprintf("%d", got[i]))
	}
	res.Tables = append(res.Tables, tbl)
	declining := got[len(got)-1] < got[0]
	res.Checks = append(res.Checks, report.Check{
		Artifact: "E14", Metric: "commit counts decline or flatten across releases",
		Paper:    "decreased or became constant",
		Measured: fmt.Sprintf("%d → %d", got[0], got[len(got)-1]),
		Holds:    declining,
	})
	return res, nil
}

// E15FaucetBurn reproduces Figure 11.
func (s *Suite) E15FaucetBurn() (ExperimentResult, error) {
	res := ExperimentResult{ID: "E15", Title: "Figure 11: FAUCET commit distribution"}
	h, err := vcs.GenerateFaucet(vcs.GenerateConfig{Seed: s.Seed})
	if err != nil {
		return res, err
	}
	dist, err := burn.Distribution(h)
	if err != nil {
		return res, err
	}
	wants := map[burn.Subsystem]float64{
		burn.Configuration:        0.38,
		burn.NetworkFunctionality: 0.35,
		burn.ExternalAbstraction:  0.27,
	}
	tbl := &report.Table{Title: "FAUCET commits by subsystem (Figure 11)",
		Headers: []string{"subsystem", "paper", "measured"}}
	for _, sub := range burn.Subsystems() {
		res.Checks = append(res.Checks, report.Check{
			Artifact: "E15", Metric: sub.String(),
			Paper:    report.Pct(wants[sub]),
			Measured: report.Pct(dist[sub]),
			Holds:    within(dist[sub], wants[sub], 0.03),
		})
		_ = tbl.AddRow(sub.String(), report.Pct(wants[sub]), report.Pct(dist[sub]))
	}
	res.Tables = append(res.Tables, tbl)
	return res, nil
}

// E16DependencyBurn reproduces Table IV.
func (s *Suite) E16DependencyBurn() (ExperimentResult, error) {
	res := ExperimentResult{ID: "E16", Title: "Table IV: FAUCET dependency burn-down"}
	h, err := vcs.GenerateFaucet(vcs.GenerateConfig{Seed: s.Seed})
	if err != nil {
		return res, err
	}
	table, err := burn.BurnDownTable(h)
	if err != nil {
		return res, err
	}
	want := map[string]int{}
	for _, d := range vcs.FaucetDependencies() {
		want[d.Name] = d.Changes
	}
	tbl := &report.Table{Title: "Dependency version changes (Table IV)",
		Headers: []string{"dependency", "paper", "measured"}}
	for _, row := range table {
		res.Checks = append(res.Checks, report.Check{
			Artifact: "E16", Metric: row.Dependency + " version changes",
			Paper:    fmt.Sprintf("%d", want[row.Dependency]),
			Measured: fmt.Sprintf("%d", row.Changes),
			Holds:    row.Changes == want[row.Dependency],
		})
		_ = tbl.AddRow(row.Dependency, fmt.Sprintf("%d", want[row.Dependency]), fmt.Sprintf("%d", row.Changes))
	}
	res.Tables = append(res.Tables, tbl)
	return res, nil
}

// E17VulnerabilityScan reproduces the §V-A dependency-vulnerability
// analysis of ONOS.
func (s *Suite) E17VulnerabilityScan() (ExperimentResult, error) {
	res := ExperimentResult{ID: "E17", Title: "§V-A: ONOS dependency vulnerabilities over versions"}
	pts, err := depscan.VulnerabilityTrend(depscan.ONOSManifests(), depscan.BuiltinDB())
	if err != nil {
		return res, err
	}
	tbl := &report.Table{Title: "Vulnerabilities per ONOS release (§V-A)",
		Headers: []string{"version", "dependencies", "findings", "critical"}}
	grows := true
	for i, p := range pts {
		if i > 0 && p.Findings < pts[i-1].Findings {
			grows = false
		}
		_ = tbl.AddRow(p.Version, fmt.Sprintf("%d", p.Deps),
			fmt.Sprintf("%d", p.Findings), fmt.Sprintf("%d", p.Critical))
	}
	res.Tables = append(res.Tables, tbl)
	res.Checks = append(res.Checks,
		report.Check{Artifact: "E17", Metric: "vulnerability count grows with versions",
			Paper: "increased over time as dependencies were added",
			Measured: fmt.Sprintf("%d → %d findings", pts[0].Findings,
				pts[len(pts)-1].Findings),
			Holds: grows && pts[len(pts)-1].Findings > pts[0].Findings},
	)
	// CVE-2018-1000615 appears in releases carrying the stale OVSDB.
	found := false
	for _, m := range depscan.ONOSManifests() {
		fs, err := depscan.Scan(m, depscan.BuiltinDB())
		if err != nil {
			return res, err
		}
		for _, f := range fs {
			if f.CVE.ID == "CVE-2018-1000615" {
				found = true
			}
		}
	}
	res.Checks = append(res.Checks, report.Check{
		Artifact: "E17", Metric: "OVSDB DoS (CVE-2018-1000615) detected",
		Paper:    "outdated OVSDB exposed ONOS to DoS",
		Measured: fmt.Sprintf("detected: %v", found),
		Holds:    found,
	})
	return res, nil
}

// E18ControllerSelection reproduces §VII-A / Table VI: the controller
// selection guideline.
func (s *Suite) E18ControllerSelection() (ExperimentResult, error) {
	res := ExperimentResult{ID: "E18", Title: "§VII-A / Table VI: controller selection guideline"}
	full, err := s.Full()
	if err != nil {
		return res, err
	}
	gs, err := full.Guidelines()
	if err != nil {
		return res, err
	}
	tbl := &report.Table{Title: "Controller stability indicators (§VII-A)",
		Headers: []string{"controller", "missing-logic", "load", "fail-stop", "deterministic"}}
	byCtl := map[tracker.Controller]study.ControllerGuideline{}
	for _, g := range gs {
		byCtl[g.Controller] = g
		_ = tbl.AddRow(g.Controller.String(), report.Pct(g.MissingLogicShare),
			report.Pct(g.LoadShare), report.Pct(g.FailStopShare), report.Pct(g.DeterministicShare))
	}
	res.Tables = append(res.Tables, tbl)
	res.Checks = append(res.Checks,
		report.Check{Artifact: "E18", Metric: "recommended controller",
			Paper: "ONOS most stable", Measured: gs[0].Controller.String(),
			Holds: gs[0].Controller == tracker.ONOS},
		report.Check{Artifact: "E18", Metric: "FAUCET missing-logic share",
			Paper: "52.5%", Measured: report.Pct(byCtl[tracker.FAUCET].MissingLogicShare),
			Holds: within(byCtl[tracker.FAUCET].MissingLogicShare, 0.525, 0.08)},
		report.Check{Artifact: "E18", Metric: "CORD load share vs ONOS",
			Paper: "30% vs 16%",
			Measured: fmt.Sprintf("%s vs %s", report.Pct(byCtl[tracker.CORD].LoadShare),
				report.Pct(byCtl[tracker.ONOS].LoadShare)),
			Holds: within(byCtl[tracker.CORD].LoadShare, 0.30, 0.07) &&
				within(byCtl[tracker.ONOS].LoadShare, 0.16, 0.07)},
	)
	return res, nil
}

// E19RecoveryCoverage reproduces Table VII empirically: inject every
// taxonomy fault class and measure each framework model's recovery.
func (s *Suite) E19RecoveryCoverage() (ExperimentResult, error) {
	res := ExperimentResult{ID: "E19", Title: "Table VII: recovery-framework coverage (empirical)"}
	m, err := recovery.Evaluate(recovery.StandardStrategies(), recovery.EvalConfig{Trials: 6, Seed: s.Seed})
	if err != nil {
		return res, err
	}
	tbl := &report.Table{Title: "Recovery rate per fault × strategy (Table VII)",
		Headers: append([]string{"fault"}, m.Strategies()...)}
	for _, f := range m.Faults() {
		row := []string{f}
		for _, st := range m.Strategies() {
			c, _ := m.Cell(f, st)
			mark := " "
			if c.Recovers() {
				mark = "✓"
			}
			row = append(row, fmt.Sprintf("%s %.2f", mark, c.Rate()))
		}
		_ = tbl.AddRow(row...)
	}
	res.Tables = append(res.Tables, tbl)

	dc := m.DeterminismCoverage()
	var ndCovered, strategies int
	worstDet := 0.0
	for _, c := range dc {
		strategies++
		if c.NonDet >= 0.5 {
			ndCovered++
		}
		if c.Det > worstDet {
			worstDet = c.Det
		}
	}
	res.Checks = append(res.Checks,
		report.Check{Artifact: "E19", Metric: "most strategies recover non-deterministic bugs",
			Paper: "most systems easily recover non-deterministic issues",
			Measured: fmt.Sprintf("%d/%d strategies cover ≥ half the non-det classes",
				ndCovered, strategies),
			Holds: ndCovered*2 >= strategies},
		report.Check{Artifact: "E19", Metric: "deterministic bugs remain largely unsolved",
			Paper: "very little for deterministic issues",
			Measured: fmt.Sprintf("best strategy covers %s of deterministic classes",
				report.Pct(worstDet)),
			Holds: worstDet <= 0.5},
	)
	cov := m.CoverageByTrigger()
	et := cov["event-transform"]
	res.Checks = append(res.Checks, report.Check{
		Artifact: "E19", Metric: "network-event tools do not cover config/external triggers",
		Paper:    "existing approaches focus on network events",
		Measured: fmt.Sprintf("event-transform: net=%v conf=%v ext=%v", et[taxonomy.TriggerNetworkEvent], et[taxonomy.TriggerConfiguration], et[taxonomy.TriggerExternalCall]),
		Holds:    et[taxonomy.TriggerNetworkEvent] && !et[taxonomy.TriggerConfiguration] && !et[taxonomy.TriggerExternalCall],
	})
	return res, nil
}

// E20CrossDomainComparison reproduces the §IX related-work table:
// symptom shares in SDN vs cloud vs BGP studies.
func (s *Suite) E20CrossDomainComparison() (ExperimentResult, error) {
	res := ExperimentResult{ID: "E20", Title: "§IX: symptom shares across domains"}
	full, err := s.Full()
	if err != nil {
		return res, err
	}
	rows := full.CompareDomains()
	tbl := &report.Table{Title: "Symptoms: SDN vs Cloud vs BGP (§IX)",
		Headers: []string{"symptom", "SDN (measured)", "cloud", "bgp"}}
	na := func(v float64) string {
		if v < 0 {
			return "NA"
		}
		return report.Pct(v)
	}
	for _, r := range rows {
		_ = tbl.AddRow(r.Symptom.String(), report.Pct(r.SDNMeasured), na(r.CloudRef), na(r.BGPRef))
		switch r.Symptom {
		case taxonomy.SymptomFailStop:
			res.Checks = append(res.Checks, report.Check{
				Artifact: "E20", Metric: "SDN fail-stop share below cloud and BGP",
				Paper:    "20% vs 59% / 39%",
				Measured: report.Pct(r.SDNMeasured),
				Holds:    r.SDNMeasured < r.CloudRef && r.SDNMeasured < r.BGPRef,
			})
		case taxonomy.SymptomByzantine:
			res.Checks = append(res.Checks, report.Check{
				Artifact: "E20", Metric: "SDN byzantine share above cloud and BGP",
				Paper:    "61.33% vs 25% / 38%",
				Measured: report.Pct(r.SDNMeasured),
				Holds:    r.SDNMeasured > r.CloudRef && r.SDNMeasured > r.BGPRef,
			})
		}
	}
	res.Tables = append(res.Tables, tbl)
	return res, nil
}
